// LEB128 varints and delta-coded ascending runs.
//
// The compressed graph container (graph/graph_compressed.h) and the
// out-of-core spill segments (graph/oocore.h) store id sequences as
// unsigned LEB128 varints; strictly-ascending runs (CSR adjacency rows,
// sorted IP sets, sorted edge keys) additionally delta-code: the first
// value is stored verbatim, every later one as (value - previous - 1), so
// dense runs cost one byte per element. Decoders are bounds-checked and
// throw util::ParseError on truncated or overlong input — a corrupted
// byte must never turn into silent garbage ids.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>

#include "util/require.h"

namespace seg::util {

/// Largest encoded size of one varint (ceil(64 / 7) bytes).
inline constexpr std::size_t kMaxVarintBytes = 10;

/// Appends `value` to `out` as an unsigned LEB128 varint (1-10 bytes).
inline void append_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>(static_cast<unsigned char>(value) | 0x80u));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

/// Decodes one varint from [p, end), advancing `p` past it. Throws
/// ParseError when the stream is truncated mid-varint or the encoding is
/// overlong (more than 10 bytes, or bits beyond 2^64 in the 10th byte).
inline std::uint64_t decode_varint(const unsigned char*& p, const unsigned char* end) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  while (true) {
    require_data(p != end, "decode_varint: truncated varint");
    const unsigned char byte = *p++;
    if (shift == 63) {
      // 10th byte: only the low bit may carry payload, and it must be final.
      require_data(byte <= 1, "decode_varint: varint overflows 64 bits");
    }
    value |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
    if ((byte & 0x80u) == 0) {
      return value;
    }
    shift += 7;
    require_data(shift < 64, "decode_varint: varint longer than 10 bytes");
  }
}

/// Appends a strictly-ascending run: values[0] verbatim, then
/// (values[i] - values[i-1] - 1) for each following element. The run
/// length is not stored — callers keep it in their own degree stream.
template <typename T>
void append_ascending_run(std::string& out, std::span<const T> values) {
  if (values.empty()) {
    return;
  }
  append_varint(out, static_cast<std::uint64_t>(values[0]));
  for (std::size_t i = 1; i < values.size(); ++i) {
    require(values[i] > values[i - 1], "append_ascending_run: values not strictly ascending");
    const auto prev = static_cast<std::uint64_t>(values[i - 1]);
    append_varint(out, static_cast<std::uint64_t>(values[i]) - prev - 1);
  }
}

/// Decodes `count` elements of a strictly-ascending run into `out_values`.
/// Throws ParseError on truncation, overflow past 2^64, or when a decoded
/// element does not fit in T.
template <typename T>
void decode_ascending_run(const unsigned char*& p, const unsigned char* end,
                          std::size_t count, T* out_values) {
  if (count == 0) {
    return;
  }
  std::uint64_t previous = decode_varint(p, end);
  require_data(previous <= static_cast<std::uint64_t>(std::numeric_limits<T>::max()),
               "decode_ascending_run: value out of range");
  out_values[0] = static_cast<T>(previous);
  for (std::size_t i = 1; i < count; ++i) {
    const std::uint64_t delta = decode_varint(p, end);
    require_data(previous + 1 != 0 && delta <= ~std::uint64_t{0} - previous - 1,
                 "decode_ascending_run: run overflows 64 bits");
    previous += delta + 1;
    require_data(previous <= static_cast<std::uint64_t>(std::numeric_limits<T>::max()),
                 "decode_ascending_run: value out of range");
    out_values[i] = static_cast<T>(previous);
  }
}

}  // namespace seg::util
