// Append-only per-day observability journal (`segf1 obsjournal 1`).
//
// A journal is the longitudinal artifact of seg::obs: one JSONL line per
// observation day, written by core::Pipeline at each day rollover, holding
// the day's deterministic run snapshot — record/graph/prune/carry counters,
// the score histogram, per-feature summary histograms, calibration gauges,
// drift gauges and any tripped alerts. Entries are fully deterministic by
// default (byte-identical across thread counts for the same inputs);
// wall-clock/RSS/queue extras live in an opt-in "runtime" sub-object that
// identity tests leave disabled. See docs/FORMATS.md ("obsjournal") for
// the byte-level spec and docs/observability.md for the field catalog.
//
// Like every seg::obs surface, the journal is telemetry only: nothing in
// the pipeline reads it back, so enabling it cannot perturb scores or
// serialized artifacts (tests/core/pipeline_test.cpp asserts this).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace seg::obs {

inline constexpr std::string_view kObsJournalMagic = "obsjournal";
inline constexpr int kObsJournalVersion = 1;

/// Fixed-bucket summary histogram carried in a journal entry. Unlike the
/// thread-sharded HistogramMetric this is a plain serial accumulator —
/// entries are built on one thread in a deterministic order, so mean/min/
/// max are bit-stable.
struct JournalHistogram {
  std::vector<double> bounds;          ///< ascending upper bounds; last bucket is +Inf
  std::vector<std::uint64_t> buckets;  ///< size bounds.size() + 1
  std::uint64_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;

  /// Starts an empty histogram over `bounds` (buckets sized to match).
  static JournalHistogram with_bounds(std::vector<double> bounds);

  /// Counts `value` into the first bucket whose upper bound is >= value
  /// (same convention as HistogramMetric) and folds it into mean/min/max.
  void observe(double value);
};

/// One tripped drift/health threshold, recorded as a structured event.
struct JournalAlert {
  std::string gauge;       ///< registry-style gauge name, e.g. "seg_drift_score_psi"
  double value = 0.0;      ///< observed value that tripped
  double threshold = 0.0;  ///< configured trip threshold
};

/// One journal line: everything seg::obs knows about one observation day.
/// Sections keep insertion order so serialization is reproducible.
struct JournalEntry {
  std::int64_t day = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, JournalHistogram>> histograms;
  std::vector<JournalAlert> alerts;
  /// Non-deterministic extras (wall clock, RSS, queue depth...). Opt-in:
  /// populated only when the producer was asked for runtime detail, and
  /// excluded from byte-identity expectations.
  std::vector<std::pair<std::string, double>> runtime;

  void add_counter(std::string name, std::uint64_t value);
  void add_gauge(std::string name, double value);
  void add_histogram(std::string name, JournalHistogram histogram);
  void add_runtime(std::string name, double value);

  /// Lookup helpers; nullptr when the name is absent.
  const std::uint64_t* find_counter(std::string_view name) const;
  const double* find_gauge(std::string_view name) const;
  const JournalHistogram* find_histogram(std::string_view name) const;
};

/// Serializes one entry as a single JSON line (no trailing newline handled
/// here; JournalWriter adds it). Key order is fixed; doubles use precision
/// 17 so the bytes are reproducible for identical values.
void write_journal_entry(std::ostream& out, const JournalEntry& entry);

/// Streams a journal: writes the `segf1 obsjournal 1` header line on
/// construction, then one JSON line per append(). Days must be strictly
/// increasing (PreconditionError otherwise) — the journal is append-only
/// and per-day.
class JournalWriter {
 public:
  explicit JournalWriter(std::ostream& out);

  void append(const JournalEntry& entry);

  std::size_t entries_written() const { return entries_; }

 private:
  std::ostream* out_;
  std::size_t entries_ = 0;
  std::int64_t last_day_ = 0;
};

/// The journal_lite reader: parses a full journal stream back into
/// entries using the dependency-free obs::json parser. Throws
/// util::ParseError on a bad header or malformed line. Tolerates unknown
/// keys (forward compatibility within version 1).
std::vector<JournalEntry> read_journal(std::istream& in);

/// Validates journal text (`segugio validate-obs --journal`): header line,
/// per-line JSON shape, required fields, histogram bucket/count
/// consistency, finite numbers, and strictly increasing days. Returns ""
/// when valid, else a message naming the first offending line.
std::string validate_obs_journal(std::string_view text);

}  // namespace seg::obs
