// Span-based tracing for the pipeline (the `seg::obs` runtime).
//
// A Span measures one stage on the calling thread: construction reads the
// monotonic clock, close() (or the destructor) reads it again and — when
// tracing is enabled — appends a SpanRecord to a per-thread buffer owned by
// the process-wide Tracer. Spans nest: each thread keeps a depth counter,
// so records reconstruct the stage hierarchy without any cross-thread
// synchronization, and spans opened inside util::parallel_for workers land
// in the worker's own buffer (no locks on the hot path).
//
// Span::close() returns the elapsed seconds, which is how the pipeline's
// timing structs (graph::BuildTimings, core::PrepareTimings, ...) are now
// computed: they are views over span measurements, not a second timing
// mechanism. The clock is read whether or not tracing is enabled, so
// enabling the tracer never changes what the timing structs report — and
// the pipeline's scores never depend on either.
//
// Threading contract: Span construction/close is safe on any thread.
// Tracer::snapshot()/clear()/set_enabled() must be called from the top
// level while no spans are being recorded (between pipeline stages), like
// util::set_parallelism.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace seg::obs {

/// One closed span, in the tracer's buffers. Times are nanoseconds since
/// the process-wide trace epoch (first obs clock use).
struct SpanRecord {
  std::string name;
  std::uint32_t tid = 0;    ///< tracer thread index (dense, first-use order)
  std::uint32_t depth = 0;  ///< nesting depth on its thread when opened
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
};

/// Nanoseconds since the process-wide trace epoch (monotonic clock).
std::int64_t now_ns();

/// Seconds since the trace epoch; the logger stamps lines with this.
double uptime_seconds();

/// Process-wide span collector. Disabled by default: spans still measure
/// time (close() returns elapsed seconds) but record nothing.
class Tracer {
 public:
  static Tracer& instance();

  void set_enabled(bool on);
  bool enabled() const;

  /// All records closed so far, sorted by (tid, start, -dur) so each
  /// thread's lane reads top-down. Top-level calls only.
  std::vector<SpanRecord> snapshot() const;

  /// Drops every record (buffers stay registered). Top-level calls only.
  void clear();

 private:
  Tracer() = default;
};

/// RAII stage timer; see the header comment. Not copyable or movable —
/// a span is an event on the thread that opened it.
class Span {
 public:
  explicit Span(const char* name) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ends the span, records it (when tracing is enabled), and returns the
  /// elapsed seconds. Idempotent; the destructor calls it.
  double close() noexcept;

  /// Elapsed seconds so far without closing.
  double elapsed_seconds() const noexcept;

 private:
  const char* name_;
  std::int64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  bool open_ = true;
};

/// Chrome trace_event JSON over `records` (load in Perfetto or
/// chrome://tracing). Timestamps are integer microseconds so nesting
/// survives the unit conversion exactly.
void write_chrome_trace(std::ostream& out, const std::vector<SpanRecord>& records);

/// Convenience: write_chrome_trace over Tracer::instance().snapshot().
void write_chrome_trace(std::ostream& out);

/// Checks that `records` are well-formed: non-negative times, and for each
/// thread the spans form a properly nested forest (children inside their
/// parent's interval, LIFO close order). Returns an empty string when OK,
/// else a description of the first violation.
std::string validate_spans(const std::vector<SpanRecord>& records);

#define SEG_OBS_CONCAT_INNER(a, b) a##b
#define SEG_OBS_CONCAT(a, b) SEG_OBS_CONCAT_INNER(a, b)
/// Opens an RAII span for the rest of the enclosing scope.
#define SEG_SPAN(name) ::seg::obs::Span SEG_OBS_CONCAT(seg_span_, __LINE__)(name)

}  // namespace seg::obs
