#include "util/obs/process.h"

#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#if defined(__linux__)
#include <cstdio>
#include <unistd.h>
#endif

namespace seg::obs {

namespace {

// ru_maxrss is a high-water mark that never falls within a process; the
// memory-bounding benches (bench_scale_sweep) also need the *current*
// resident set, which on Linux is statm's second field in pages.
std::uint64_t current_rss_kb() {
#if defined(__linux__)
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) {
    return 0;
  }
  unsigned long long total = 0;
  unsigned long long resident = 0;
  const int fields = std::fscanf(statm, "%llu %llu", &total, &resident);
  std::fclose(statm);
  if (fields != 2) {
    return 0;
  }
  const auto page_kb = static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE)) / 1024;
  return resident * page_kb;
#else
  return 0;
#endif
}

}  // namespace

ProcessSample sample_process() {
  ProcessSample sample;
  sample.hardware_concurrency = std::thread::hardware_concurrency();
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    sample.rss_peak_kb = static_cast<std::uint64_t>(usage.ru_maxrss);
    sample.minor_faults = static_cast<std::uint64_t>(usage.ru_minflt);
    sample.major_faults = static_cast<std::uint64_t>(usage.ru_majflt);
  }
#endif
  sample.rss_now_kb = current_rss_kb();
  return sample;
}

}  // namespace seg::obs
