#include "util/obs/process.h"

#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace seg::obs {

ProcessSample sample_process() {
  ProcessSample sample;
  sample.hardware_concurrency = std::thread::hardware_concurrency();
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    sample.rss_peak_kb = static_cast<std::uint64_t>(usage.ru_maxrss);
    sample.minor_faults = static_cast<std::uint64_t>(usage.ru_minflt);
    sample.major_faults = static_cast<std::uint64_t>(usage.ru_majflt);
  }
#endif
  return sample;
}

}  // namespace seg::obs
