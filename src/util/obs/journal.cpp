#include "util/obs/journal.h"

#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>

#include "util/obs/json_lite.h"
#include "util/require.h"
#include "util/serialize.h"

namespace seg::obs {

namespace {

// Same escaping/formatting idiom as the run-report exporter (export.cpp):
// precision-17 doubles make serialization reproducible for identical bits.
void write_escaped(std::ostream& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
}

std::string json_double(double value) {
  if (!std::isfinite(value)) {
    return "null";  // journal values are expected finite; validator rejects null
  }
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

void write_histogram(std::ostream& out, const JournalHistogram& histogram) {
  out << "{\"bounds\":[";
  for (std::size_t i = 0; i < histogram.bounds.size(); ++i) {
    out << (i ? "," : "") << json_double(histogram.bounds[i]);
  }
  out << "],\"buckets\":[";
  for (std::size_t i = 0; i < histogram.buckets.size(); ++i) {
    out << (i ? "," : "") << histogram.buckets[i];
  }
  out << "],\"count\":" << histogram.count << ",\"mean\":" << json_double(histogram.mean)
      << ",\"min\":" << json_double(histogram.min)
      << ",\"max\":" << json_double(histogram.max) << "}";
}

template <typename Value, typename WriteValue>
void write_section(std::ostream& out, std::string_view key,
                   const std::vector<std::pair<std::string, Value>>& items,
                   const WriteValue& write_value) {
  out << ",\"" << key << "\":{";
  for (std::size_t i = 0; i < items.size(); ++i) {
    out << (i ? "," : "") << '"';
    write_escaped(out, items[i].first);
    out << "\":";
    write_value(out, items[i].second);
  }
  out << '}';
}

}  // namespace

JournalHistogram JournalHistogram::with_bounds(std::vector<double> bounds) {
  JournalHistogram histogram;
  histogram.buckets.assign(bounds.size() + 1, 0);
  histogram.bounds = std::move(bounds);
  return histogram;
}

void JournalHistogram::observe(double value) {
  std::size_t bucket = bounds.size();  // +Inf fallback
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (value <= bounds[i]) {
      bucket = i;
      break;
    }
  }
  util::require(bucket < buckets.size(), "JournalHistogram::observe: bucket out of range");
  ++buckets[bucket];
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = value < min ? value : min;
    max = value > max ? value : max;
  }
  ++count;
  // Incremental mean keeps the serial accumulation bit-stable for a given
  // observation order.
  mean += (value - mean) / static_cast<double>(count);
}

void JournalEntry::add_counter(std::string name, std::uint64_t value) {
  counters.emplace_back(std::move(name), value);
}

void JournalEntry::add_gauge(std::string name, double value) {
  gauges.emplace_back(std::move(name), value);
}

void JournalEntry::add_histogram(std::string name, JournalHistogram histogram) {
  histograms.emplace_back(std::move(name), std::move(histogram));
}

void JournalEntry::add_runtime(std::string name, double value) {
  runtime.emplace_back(std::move(name), value);
}

const std::uint64_t* JournalEntry::find_counter(std::string_view name) const {
  for (const auto& [key, value] : counters) {
    if (key == name) {
      return &value;
    }
  }
  return nullptr;
}

const double* JournalEntry::find_gauge(std::string_view name) const {
  for (const auto& [key, value] : gauges) {
    if (key == name) {
      return &value;
    }
  }
  return nullptr;
}

const JournalHistogram* JournalEntry::find_histogram(std::string_view name) const {
  for (const auto& [key, value] : histograms) {
    if (key == name) {
      return &value;
    }
  }
  return nullptr;
}

void write_journal_entry(std::ostream& out, const JournalEntry& entry) {
  out << "{\"day\":" << entry.day;
  write_section(out, "counters", entry.counters,
                [](std::ostream& o, std::uint64_t v) { o << v; });
  if (!entry.gauges.empty()) {
    write_section(out, "gauges", entry.gauges,
                  [](std::ostream& o, double v) { o << json_double(v); });
  }
  if (!entry.histograms.empty()) {
    write_section(out, "histograms", entry.histograms,
                  [](std::ostream& o, const JournalHistogram& h) { write_histogram(o, h); });
  }
  if (!entry.alerts.empty()) {
    out << ",\"alerts\":[";
    for (std::size_t i = 0; i < entry.alerts.size(); ++i) {
      const JournalAlert& alert = entry.alerts[i];
      out << (i ? "," : "") << "{\"gauge\":\"";
      write_escaped(out, alert.gauge);
      out << "\",\"value\":" << json_double(alert.value)
          << ",\"threshold\":" << json_double(alert.threshold) << '}';
    }
    out << ']';
  }
  if (!entry.runtime.empty()) {
    write_section(out, "runtime", entry.runtime,
                  [](std::ostream& o, double v) { o << json_double(v); });
  }
  out << '}';
}

JournalWriter::JournalWriter(std::ostream& out) : out_(&out) {
  util::write_format_header(*out_, kObsJournalMagic, kObsJournalVersion);
}

void JournalWriter::append(const JournalEntry& entry) {
  util::require(entries_ == 0 || entry.day > last_day_,
                "JournalWriter::append: days must be strictly increasing");
  write_journal_entry(*out_, entry);
  *out_ << '\n';
  out_->flush();  // append-only artifact: each day survives a crash
  last_day_ = entry.day;
  ++entries_;
}

namespace {

double number_or_throw(const json::Value& value, const std::string& context) {
  util::require_data(value.is_number(), "obsjournal: " + context + " is not a number");
  return value.as_number();
}

JournalHistogram parse_histogram(const json::Value& value, const std::string& context) {
  util::require_data(value.is_object(), "obsjournal: " + context + " is not an object");
  JournalHistogram histogram;
  const json::Value* bounds = value.find("bounds");
  const json::Value* buckets = value.find("buckets");
  util::require_data(bounds && bounds->is_array() && buckets && buckets->is_array(),
                     "obsjournal: " + context + " missing bounds/buckets arrays");
  for (const json::Value& bound : bounds->as_array()) {
    histogram.bounds.push_back(number_or_throw(bound, context + ".bounds"));
  }
  for (const json::Value& bucket : buckets->as_array()) {
    histogram.buckets.push_back(
        static_cast<std::uint64_t>(number_or_throw(bucket, context + ".buckets")));
  }
  const json::Value* count = value.find("count");
  const json::Value* mean = value.find("mean");
  const json::Value* min = value.find("min");
  const json::Value* max = value.find("max");
  util::require_data(count && mean && min && max,
                     "obsjournal: " + context + " missing count/mean/min/max");
  histogram.count = static_cast<std::uint64_t>(number_or_throw(*count, context + ".count"));
  histogram.mean = number_or_throw(*mean, context + ".mean");
  histogram.min = number_or_throw(*min, context + ".min");
  histogram.max = number_or_throw(*max, context + ".max");
  return histogram;
}

JournalEntry parse_entry(const json::Value& root, const std::string& context) {
  util::require_data(root.is_object(), "obsjournal: " + context + " is not a JSON object");
  JournalEntry entry;
  const json::Value* day = root.find("day");
  util::require_data(day != nullptr, "obsjournal: " + context + " missing \"day\"");
  entry.day = static_cast<std::int64_t>(number_or_throw(*day, context + ".day"));
  if (const json::Value* counters = root.find("counters")) {
    util::require_data(counters->is_object(), "obsjournal: " + context + ".counters");
    for (const auto& [key, value] : counters->as_object()) {
      entry.add_counter(key, static_cast<std::uint64_t>(
                                 number_or_throw(value, context + ".counters." + key)));
    }
  }
  if (const json::Value* gauges = root.find("gauges")) {
    util::require_data(gauges->is_object(), "obsjournal: " + context + ".gauges");
    for (const auto& [key, value] : gauges->as_object()) {
      entry.add_gauge(key, number_or_throw(value, context + ".gauges." + key));
    }
  }
  if (const json::Value* histograms = root.find("histograms")) {
    util::require_data(histograms->is_object(), "obsjournal: " + context + ".histograms");
    for (const auto& [key, value] : histograms->as_object()) {
      entry.add_histogram(key, parse_histogram(value, context + ".histograms." + key));
    }
  }
  if (const json::Value* alerts = root.find("alerts")) {
    util::require_data(alerts->is_array(), "obsjournal: " + context + ".alerts");
    for (const json::Value& item : alerts->as_array()) {
      util::require_data(item.is_object(), "obsjournal: " + context + ".alerts item");
      const json::Value* gauge = item.find("gauge");
      const json::Value* observed = item.find("value");
      const json::Value* threshold = item.find("threshold");
      util::require_data(gauge && gauge->is_string() && observed && threshold,
                         "obsjournal: " + context + ".alerts item shape");
      entry.alerts.push_back(
          {gauge->as_string(), number_or_throw(*observed, context + ".alerts.value"),
           number_or_throw(*threshold, context + ".alerts.threshold")});
    }
  }
  if (const json::Value* runtime = root.find("runtime")) {
    util::require_data(runtime->is_object(), "obsjournal: " + context + ".runtime");
    for (const auto& [key, value] : runtime->as_object()) {
      entry.add_runtime(key, number_or_throw(value, context + ".runtime." + key));
    }
  }
  return entry;
}

}  // namespace

std::vector<JournalEntry> read_journal(std::istream& in) {
  std::string header;
  util::require_data(static_cast<bool>(std::getline(in, header)),
                     "obsjournal: empty stream (missing header)");
  std::ostringstream expected;
  util::write_format_header(expected, kObsJournalMagic, kObsJournalVersion);
  std::string expected_line = std::move(expected).str();
  expected_line.pop_back();  // getline strips the newline
  util::require_data(header == expected_line,
                     "obsjournal: bad header line '" + header + "'");
  std::vector<JournalEntry> entries;
  std::string line;
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    std::string error;
    const json::Value root = json::parse(line, &error);
    util::require_data(error.empty(),
                       "obsjournal: line " + std::to_string(line_number) + ": " + error);
    entries.push_back(parse_entry(root, "line " + std::to_string(line_number)));
  }
  return entries;
}

std::string validate_obs_journal(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::vector<JournalEntry> entries;
  try {
    entries = read_journal(in);
  } catch (const util::ParseError& error) {
    return error.what();
  }
  std::int64_t last_day = std::numeric_limits<std::int64_t>::min();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const JournalEntry& entry = entries[i];
    const std::string context = "entry " + std::to_string(i) + " (day " +
                                std::to_string(entry.day) + ")";
    if (entry.day <= last_day && i > 0) {
      return "obsjournal: " + context + ": days are not strictly increasing";
    }
    last_day = entry.day;
    for (const auto& [name, histogram] : entry.histograms) {
      if (histogram.buckets.size() != histogram.bounds.size() + 1) {
        return "obsjournal: " + context + ": histogram '" + name +
               "' has " + std::to_string(histogram.buckets.size()) + " buckets for " +
               std::to_string(histogram.bounds.size()) + " bounds";
      }
      std::uint64_t total = 0;
      for (const std::uint64_t bucket : histogram.buckets) {
        total += bucket;
      }
      if (total != histogram.count) {
        return "obsjournal: " + context + ": histogram '" + name +
               "' bucket sum " + std::to_string(total) + " != count " +
               std::to_string(histogram.count);
      }
      for (std::size_t b = 1; b < histogram.bounds.size(); ++b) {
        if (!(histogram.bounds[b] > histogram.bounds[b - 1])) {
          return "obsjournal: " + context + ": histogram '" + name +
                 "' bounds are not strictly ascending";
        }
      }
      if (histogram.count > 0 && !(histogram.min <= histogram.max)) {
        return "obsjournal: " + context + ": histogram '" + name + "' has min > max";
      }
    }
    for (const JournalAlert& alert : entry.alerts) {
      if (alert.gauge.empty()) {
        return "obsjournal: " + context + ": alert with empty gauge name";
      }
      if (!std::isfinite(alert.value) || !std::isfinite(alert.threshold)) {
        return "obsjournal: " + context + ": alert '" + alert.gauge +
               "' has non-finite value/threshold";
      }
    }
    for (const auto& [name, value] : entry.gauges) {
      if (!std::isfinite(value)) {
        return "obsjournal: " + context + ": gauge '" + name + "' is non-finite";
      }
    }
  }
  return "";
}

}  // namespace seg::obs
