// Minimal JSON DOM parser used to validate obs exporter output
// (`segugio validate-obs`) without external dependencies. Not a general
// serialization layer: it accepts strict JSON, keeps numbers as doubles,
// and stores objects as insertion-ordered key/value vectors.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace seg::obs::json {

class Value;

using Array = std::vector<Value>;
using Object = std::vector<std::pair<std::string, Value>>;

enum class Kind { Null, Bool, Number, String, Array, Object };

class Value {
 public:
  Value() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return *array_; }
  const Object& as_object() const { return *object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  static Value make_null();
  static Value make_bool(bool b);
  static Value make_number(double n);
  static Value make_string(std::string s);
  static Value make_array(Array a);
  static Value make_object(Object o);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parses `text` as one JSON document. On failure returns a Null value and
/// sets *error (when non-null) to a message with a byte offset.
Value parse(std::string_view text, std::string* error);

}  // namespace seg::obs::json
