// Live health surface for streaming ingest sessions.
//
// A HealthSampler is a low-frequency background thread that periodically
// derives operator-facing gauges from telemetry the pipeline already
// publishes (it reads only the obs Registry and the process, never
// pipeline state — so it cannot perturb scores or artifacts):
//
//   <prefix>_records_per_sec_ewma  smoothed ingest rate, from the queue's
//                                  pushed-records counter
//   <prefix>_queue_depth           mirrored IngestQueue depth gauge
//   <prefix>_queue_drop_rate       mirrored IngestQueue drop-rate EWMA
//   <prefix>_day_lag               seg_ingest_current_day minus
//                                  seg_ingest_day_watermark (days parsed
//                                  but not yet prepared)
//   <prefix>_rss_now_kb/_rss_peak_kb   resident set via process.h
//   <prefix>_uptime_seconds        process uptime
//   <prefix>_samples_total         counter of completed samples
//
// The sampler thread routes exceptions through std::current_exception and
// rethrows them from stop() (the R-EXC1 contract); sample_once() is public
// so tests drive sampling deterministically without the thread.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

namespace seg::obs {

struct HealthOptions {
  /// Wall-clock period between samples (background thread only).
  std::chrono::milliseconds interval{1000};
  /// EWMA smoothing factor for the records/s rate (1 = instantaneous).
  double ewma_alpha = 0.3;
  /// Counter whose growth rate is the ingest rate.
  std::string records_counter = "seg_ingest_queue_pushed_records_total";
  /// Prefix of the mirrored IngestQueue gauges (`_depth`, `_drop_rate`).
  std::string queue_prefix = "seg_ingest_queue";
  /// Gauges holding the newest parsed day and the last prepared day.
  std::string current_day_gauge = "seg_ingest_current_day";
  std::string watermark_gauge = "seg_ingest_day_watermark";
  /// Prefix of every gauge/counter the sampler itself publishes.
  std::string gauge_prefix = "seg_health";
};

class HealthSampler {
 public:
  explicit HealthSampler(HealthOptions options = {});
  ~HealthSampler();  // stops the thread; a pending sampler exception is dropped

  HealthSampler(const HealthSampler&) = delete;
  HealthSampler& operator=(const HealthSampler&) = delete;

  /// Launches the background thread (PreconditionError when already
  /// running).
  void start();

  /// Stops and joins the thread, then rethrows any exception the sampler
  /// body raised. Idempotent: stopping a stopped sampler is a no-op.
  void stop();

  bool running() const;

  /// Takes one sample on the calling thread. Used by the background loop
  /// and directly by tests/benches that want deterministic sampling.
  void sample_once();

  const HealthOptions& options() const { return options_; }

 private:
  void run_loop();

  HealthOptions options_;
  std::thread thread_;
  mutable std::mutex mutex_;       ///< guards stop_requested_/error_
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::exception_ptr error_;

  std::mutex sample_mutex_;        ///< guards the EWMA state below
  bool has_last_ = false;
  std::int64_t last_ns_ = 0;
  std::uint64_t last_records_ = 0;
  double ewma_rate_ = 0.0;
};

}  // namespace seg::obs
