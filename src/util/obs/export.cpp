#include "util/obs/export.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>

#include "util/obs/metrics.h"
#include "util/obs/process.h"
#include "util/parallel.h"

namespace seg::obs {

namespace {

void write_escaped(std::ostream& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
}

std::string json_double(double value) {
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN; the only expected case is the histogram +Inf
    // bound, which the exporter spells as a string elsewhere.
    return "null";
  }
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

struct SpanAggregate {
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t min_ns = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_ns = 0;
};

}  // namespace

void write_run_report(std::ostream& out, std::string_view command,
                      const std::vector<SpanRecord>& records) {
  const ProcessSample process = sample_process();
  auto& registry = Registry::instance();

  // Aggregate spans by name; std::map keeps the output order deterministic.
  std::map<std::string, SpanAggregate> spans;
  for (const auto& record : records) {
    SpanAggregate& agg = spans[record.name];
    agg.count += 1;
    agg.total_ns += record.dur_ns;
    agg.min_ns = std::min(agg.min_ns, record.dur_ns);
    agg.max_ns = std::max(agg.max_ns, record.dur_ns);
  }

  out << "{\n";
  out << "  \"version\": 1,\n";
  out << "  \"command\": \"";
  write_escaped(out, command);
  out << "\",\n";
  out << "  \"threads\": " << util::parallelism() << ",\n";
  out << "  \"process\": {\"rss_peak_kb\": " << process.rss_peak_kb
      << ", \"minor_faults\": " << process.minor_faults
      << ", \"major_faults\": " << process.major_faults
      << ", \"hardware_concurrency\": " << process.hardware_concurrency << "},\n";

  out << "  \"metrics\": {\n";
  out << "    \"counters\": {";
  bool first = true;
  for (const Counter* counter : registry.counters()) {
    out << (first ? "" : ",") << "\n      \"";
    write_escaped(out, counter->name());
    out << "\": " << counter->value();
    first = false;
  }
  out << (first ? "" : "\n    ") << "},\n";

  out << "    \"gauges\": {";
  first = true;
  for (const Gauge* gauge : registry.gauges()) {
    out << (first ? "" : ",") << "\n      \"";
    write_escaped(out, gauge->name());
    out << "\": " << json_double(gauge->value());
    first = false;
  }
  out << (first ? "" : "\n    ") << "},\n";

  out << "    \"histograms\": {";
  first = true;
  for (const HistogramMetric* histogram : registry.histograms()) {
    out << (first ? "" : ",") << "\n      \"";
    write_escaped(out, histogram->name());
    out << "\": {\"bounds\": [";
    bool first_bound = true;
    for (const double bound : histogram->bounds()) {
      out << (first_bound ? "" : ", ") << json_double(bound);
      first_bound = false;
    }
    out << "], \"buckets\": [";
    bool first_bucket = true;
    for (const std::uint64_t bucket : histogram->bucket_counts()) {
      out << (first_bucket ? "" : ", ") << bucket;
      first_bucket = false;
    }
    out << "], \"count\": " << histogram->count()
        << ", \"sum\": " << json_double(histogram->sum()) << "}";
    first = false;
  }
  out << (first ? "" : "\n    ") << "}\n";
  out << "  },\n";

  out << "  \"spans\": {";
  first = true;
  for (const auto& [name, agg] : spans) {
    out << (first ? "" : ",") << "\n    \"";
    write_escaped(out, name);
    out << "\": {\"count\": " << agg.count
        << ", \"total_seconds\": " << json_double(static_cast<double>(agg.total_ns) * 1e-9)
        << ", \"min_seconds\": " << json_double(static_cast<double>(agg.min_ns) * 1e-9)
        << ", \"max_seconds\": " << json_double(static_cast<double>(agg.max_ns) * 1e-9) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n";
  out << "}\n";
}

void write_run_report(std::ostream& out, std::string_view command) {
  write_run_report(out, command, Tracer::instance().snapshot());
}

std::string validate_chrome_trace(const json::Value& doc) {
  if (!doc.is_object()) {
    return "trace document is not a JSON object";
  }
  const json::Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return "missing traceEvents array";
  }
  std::vector<SpanRecord> records;
  records.reserve(events->as_array().size());
  for (const json::Value& event : events->as_array()) {
    if (!event.is_object()) {
      return "traceEvents entry is not an object";
    }
    const json::Value* name = event.find("name");
    const json::Value* ph = event.find("ph");
    const json::Value* ts = event.find("ts");
    const json::Value* dur = event.find("dur");
    const json::Value* tid = event.find("tid");
    if (name == nullptr || !name->is_string()) {
      return "trace event missing string name";
    }
    if (ph == nullptr || !ph->is_string() || ph->as_string() != "X") {
      return "trace event '" + name->as_string() + "' is not a complete (ph=X) event";
    }
    if (ts == nullptr || !ts->is_number() || dur == nullptr || !dur->is_number() ||
        tid == nullptr || !tid->is_number()) {
      return "trace event '" + name->as_string() + "' missing numeric ts/dur/tid";
    }
    if (ts->as_number() < 0 || dur->as_number() < 0) {
      return "trace event '" + name->as_string() + "' has negative ts or dur";
    }
    SpanRecord record;
    record.name = name->as_string();
    record.tid = static_cast<std::uint32_t>(tid->as_number());
    record.start_ns = static_cast<std::int64_t>(ts->as_number()) * 1000;
    record.dur_ns = static_cast<std::int64_t>(dur->as_number()) * 1000;
    records.push_back(std::move(record));
  }
  return validate_spans(records);
}

std::string validate_run_report(const json::Value& doc) {
  if (!doc.is_object()) {
    return "run report is not a JSON object";
  }
  const json::Value* version = doc.find("version");
  if (version == nullptr || !version->is_number() || version->as_number() != 1) {
    return "missing or unsupported version";
  }
  const json::Value* command = doc.find("command");
  if (command == nullptr || !command->is_string()) {
    return "missing command string";
  }
  const json::Value* process = doc.find("process");
  if (process == nullptr || !process->is_object() ||
      process->find("rss_peak_kb") == nullptr) {
    return "missing process sample";
  }
  const json::Value* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object() || metrics->find("counters") == nullptr ||
      metrics->find("gauges") == nullptr || metrics->find("histograms") == nullptr) {
    return "missing metrics section";
  }
  const json::Value* spans = doc.find("spans");
  if (spans == nullptr || !spans->is_object()) {
    return "missing spans section";
  }
  for (const auto& [name, agg] : spans->as_object()) {
    const json::Value* count = agg.find("count");
    const json::Value* total = agg.find("total_seconds");
    if (count == nullptr || !count->is_number() || total == nullptr || !total->is_number()) {
      return "span aggregate '" + name + "' missing count/total_seconds";
    }
    if (count->as_number() < 1 || total->as_number() < 0) {
      return "span aggregate '" + name + "' has an invalid count or total";
    }
  }
  return {};
}

}  // namespace seg::obs
