// Process-level resource sampling for the run report and bench output.
#pragma once

#include <cstdint>

namespace seg::obs {

/// Snapshot of process-wide resource usage. Fields are 0 when the platform
/// does not expose them (non-unix builds).
struct ProcessSample {
  std::uint64_t rss_peak_kb = 0;      ///< ru_maxrss (KiB on Linux)
  std::uint64_t rss_now_kb = 0;       ///< current resident set (Linux; else 0)
  std::uint64_t minor_faults = 0;     ///< page reclaims
  std::uint64_t major_faults = 0;     ///< faults requiring I/O
  unsigned hardware_concurrency = 0;  ///< std::thread::hardware_concurrency
};

/// Samples the current process (getrusage on unix; zeros elsewhere).
ProcessSample sample_process();

}  // namespace seg::obs
