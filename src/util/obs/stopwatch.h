// Wall-clock stopwatch — obs-internal.
//
// This is the ONLY place in the tree (together with trace.cpp's epoch
// clock) that may read std::chrono::steady_clock directly; seg-lint rule
// R-OBS1 enforces it. Pipeline code times stages with obs::Span (SEG_SPAN)
// so every wall-clock read flows through the observability layer and lands
// in the trace/metrics exporters instead of ad-hoc locals.
#pragma once

#include <chrono>

namespace seg::obs {

/// Monotonic stopwatch. Starts on construction; restart() resets.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace seg::obs
