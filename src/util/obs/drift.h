// Deterministic drift gauges between journal entries.
//
// Segugio's deployment story is day-over-day tracking; the dominant
// operational failure mode is the trained model's input distribution
// drifting away from its training day (ground-truth decay). This module
// compares a pinned baseline journal entry against the current day's
// entry and produces:
//
//   - PSI and KS statistics over the "scores" histogram;
//   - per-feature PSI for every shared histogram (the f1_/f2_/f3_ feature
//     histograms the pipeline journals), plus per-group mean PSI;
//   - calibration drift: |threshold_now - threshold_baseline| from the
//     "calibration_threshold" gauge;
//   - structured JournalAlert events for every gauge that trips its
//     configured threshold.
//
// Everything here is a pure serial function of two entries: no clocks, no
// randomness, no shared state — the same pair of entries yields the same
// gauges on every run and thread count. export_drift() then mirrors the
// result into the process-wide Registry (thread-sharded like every other
// metric) for Prometheus exposition.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/obs/journal.h"

namespace seg::obs {

/// Trip points for drift alerts. The defaults follow common industry
/// practice for PSI (0.1 watch / 0.2 act) and are deliberately
/// conservative; deployments tune them per network.
struct DriftThresholds {
  double score_psi = 0.2;          ///< PSI over the score histogram
  double score_ks = 0.15;          ///< KS statistic over the score histogram
  double feature_psi = 0.25;       ///< mean PSI per feature group (f1/f2/f3)
  double calibration_delta = 0.05; ///< |calibrated threshold - baseline|
};

/// Drift gauges (unprefixed names, insertion-ordered) and tripped alerts.
/// Gauge names: "score_psi", "score_ks", "psi_<feature>", "group_psi_<g>",
/// "calibration_delta". The journal prefixes them with "drift_"; the
/// registry with "seg_drift_".
struct DriftResult {
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<JournalAlert> alerts;

  const double* find_gauge(std::string_view name) const;
};

/// Population stability index between two histograms over the same bounds
/// (PreconditionError on mismatched shapes). Proportions are smoothed with
/// a 0.5 pseudo-count per bucket so empty buckets stay finite; two
/// identical histograms score exactly 0.
double psi(const JournalHistogram& baseline, const JournalHistogram& current);

/// Two-sample Kolmogorov-Smirnov statistic over the binned CDFs (an upper
/// bound of the unbinned statistic at the shared bucket edges). 0 when
/// either histogram is empty.
double ks_statistic(const JournalHistogram& baseline, const JournalHistogram& current);

/// Compares `current` against `baseline` and returns every computable
/// drift gauge plus alerts for those exceeding `thresholds`. Histograms
/// and gauges present in only one entry are skipped (a day without scores
/// simply has no score drift).
DriftResult compute_drift(const JournalEntry& baseline, const JournalEntry& current,
                          const DriftThresholds& thresholds = {});

/// Mirrors a DriftResult into the metrics Registry: gauges as
/// `<prefix>_<name>`, plus `<prefix>_alerts_total` incremented by the
/// number of tripped alerts. Each alert is also logged (rate-unlimited:
/// one line per tripped gauge per day is the intended volume).
void export_drift(const DriftResult& result, std::string_view prefix = "seg_drift");

}  // namespace seg::obs
