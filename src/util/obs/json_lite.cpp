#include "util/obs/json_lite.h"

#include <cctype>
#include <cstdlib>

namespace seg::obs::json {

const Value* Value::find(std::string_view key) const {
  if (!is_object()) {
    return nullptr;
  }
  for (const auto& [name, value] : *object_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

Value Value::make_null() { return Value(); }

Value Value::make_bool(bool b) {
  Value v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

Value Value::make_number(double n) {
  Value v;
  v.kind_ = Kind::Number;
  v.number_ = n;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

Value Value::make_array(Array a) {
  Value v;
  v.kind_ = Kind::Array;
  v.array_ = std::make_shared<Array>(std::move(a));
  return v;
}

Value Value::make_object(Object o) {
  Value v;
  v.kind_ = Kind::Object;
  v.object_ = std::make_shared<Object>(std::move(o));
  return v;
}

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at byte " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos;
    }
  }

  bool consume(char expected) {
    if (pos < text.size() && text[pos] == expected) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + expected + "'");
  }

  bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) {
      return fail("nesting too deep");
    }
    skip_ws();
    if (pos >= text.size()) {
      return fail("unexpected end of input");
    }
    const char c = text[pos];
    switch (c) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': return parse_string_value(out);
      case 't': return parse_literal("true", Value::make_bool(true), out);
      case 'f': return parse_literal("false", Value::make_bool(false), out);
      case 'n': return parse_literal("null", Value::make_null(), out);
      default: return parse_number(out);
    }
  }

  bool parse_literal(std::string_view literal, Value value, Value& out) {
    if (text.substr(pos, literal.size()) != literal) {
      return fail("invalid literal");
    }
    pos += literal.size();
    out = std::move(value);
    return true;
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') {
      ++pos;
    }
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) {
      return fail("expected a value");
    }
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    const double number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos = start;
      return fail("malformed number");
    }
    out = Value::make_number(number);
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) {
      return false;
    }
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) {
          return fail("unterminated escape");
        }
        const char esc = text[pos];
        ++pos;
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos + 4 > text.size()) {
              return fail("truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("invalid \\u escape");
              }
            }
            pos += 4;
            // UTF-8 encode the BMP code point; surrogate pairs are kept as
            // two 3-byte sequences (adequate for validation purposes).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return fail("unknown escape");
        }
        continue;
      }
      out.push_back(c);
      ++pos;
    }
    return fail("unterminated string");
  }

  bool parse_string_value(Value& out) {
    std::string s;
    if (!parse_string(s)) {
      return false;
    }
    out = Value::make_string(std::move(s));
    return true;
  }

  bool parse_array(Value& out, int depth) {
    if (!consume('[')) {
      return false;
    }
    Array items;
    skip_ws();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      out = Value::make_array(std::move(items));
      return true;
    }
    while (true) {
      Value item;
      if (!parse_value(item, depth + 1)) {
        return false;
      }
      items.push_back(std::move(item));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (!consume(']')) {
        return false;
      }
      out = Value::make_array(std::move(items));
      return true;
    }
  }

  bool parse_object(Value& out, int depth) {
    if (!consume('{')) {
      return false;
    }
    Object members;
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      out = Value::make_object(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) {
        return false;
      }
      skip_ws();
      if (!consume(':')) {
        return false;
      }
      Value value;
      if (!parse_value(value, depth + 1)) {
        return false;
      }
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (!consume('}')) {
        return false;
      }
      out = Value::make_object(std::move(members));
      return true;
    }
  }
};

}  // namespace

Value parse(std::string_view text, std::string* error) {
  Parser parser{text, 0, {}};
  Value out;
  if (!parser.parse_value(out, 0)) {
    if (error != nullptr) {
      *error = parser.error;
    }
    return Value::make_null();
  }
  parser.skip_ws();
  if (parser.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing data at byte " + std::to_string(parser.pos);
    }
    return Value::make_null();
  }
  if (error != nullptr) {
    error->clear();
  }
  return out;
}

}  // namespace seg::obs::json
