#include "util/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <ostream>
#include <sstream>

namespace seg::obs {

std::size_t metric_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricSlots;
  return slot;
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::set(double value) noexcept {
  bits_.store(std::bit_cast<std::uint64_t>(value), std::memory_order_relaxed);
}

double Gauge::value() const noexcept {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

HistogramMetric::HistogramMetric(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  for (auto& cell : cells_) {
    cell.buckets = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

void HistogramMetric::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  Cell& cell = cells_[metric_slot()];
  cell.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t old_bits = cell.sum_bits.load(std::memory_order_relaxed);
  while (!cell.sum_bits.compare_exchange_weak(
      old_bits, std::bit_cast<std::uint64_t>(std::bit_cast<double>(old_bits) + value),
      std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> HistogramMetric::bucket_counts() const {
  std::vector<std::uint64_t> merged(bounds_.size() + 1, 0);
  for (const auto& cell : cells_) {
    for (std::size_t b = 0; b < merged.size(); ++b) {
      merged[b] += cell.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

std::uint64_t HistogramMetric::count() const {
  std::uint64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell.count.load(std::memory_order_relaxed);
  }
  return total;
}

double HistogramMetric::sum() const {
  double total = 0.0;
  for (const auto& cell : cells_) {
    total += std::bit_cast<double>(cell.sum_bits.load(std::memory_order_relaxed));
  }
  return total;
}

std::vector<double> exponential_bounds(double start, double factor, std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return *it->second;
}

HistogramMetric& Registry::histogram(std::string_view name, std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::unique_ptr<HistogramMetric>(new HistogramMetric(
                                             std::string(name), std::move(bounds))))
             .first;
  }
  return *it->second;
}

namespace {

// Prometheus exposition floats: shortest round-trip form, +Inf spelled out.
std::string format_double(double value) {
  if (value == std::numeric_limits<double>::infinity()) {
    return "+Inf";
  }
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

}  // namespace

void Registry::write_prometheus(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    out << "# TYPE " << name << " counter\n";
    out << name << " " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out << "# TYPE " << name << " gauge\n";
    out << name << " " << format_double(gauge->value()) << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    out << "# TYPE " << name << " histogram\n";
    const auto buckets = histogram->bucket_counts();
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      cumulative += buckets[b];
      const double bound = b < histogram->bounds().size()
                               ? histogram->bounds()[b]
                               : std::numeric_limits<double>::infinity();
      out << name << "_bucket{le=\"" << format_double(bound) << "\"} " << cumulative << "\n";
    }
    out << name << "_sum " << format_double(histogram->sum()) << "\n";
    out << name << "_count " << histogram->count() << "\n";
  }
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::vector<const Counter*> Registry::counters() const {
  std::lock_guard lock(mutex_);
  std::vector<const Counter*> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back(counter.get());
  }
  return out;
}

std::vector<const Gauge*> Registry::gauges() const {
  std::lock_guard lock(mutex_);
  std::vector<const Gauge*> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.push_back(gauge.get());
  }
  return out;
}

std::vector<const HistogramMetric*> Registry::histograms() const {
  std::lock_guard lock(mutex_);
  std::vector<const HistogramMetric*> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.push_back(histogram.get());
  }
  return out;
}

}  // namespace seg::obs
