#include "util/obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <ostream>

namespace seg::obs {

namespace {

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

// Per-thread record buffer. Owned by the tracer (a deque, so growing never
// moves existing buffers); each buffer is written only by its thread.
// snapshot()/clear() run at quiesce points per the Tracer contract.
struct ThreadBuf {
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
  std::vector<SpanRecord> records;
};

struct TracerState {
  std::atomic<bool> enabled{false};
  mutable std::mutex mutex;  // guards buffer registration and snapshot/clear
  std::deque<ThreadBuf> buffers;
};

TracerState& state() {
  static TracerState instance;
  return instance;
}

ThreadBuf& local_buf() {
  thread_local ThreadBuf* buf = [] {
    auto& s = state();
    std::lock_guard lock(s.mutex);
    s.buffers.emplace_back();
    s.buffers.back().tid = static_cast<std::uint32_t>(s.buffers.size() - 1);
    return &s.buffers.back();
  }();
  return *buf;
}

}  // namespace

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

double uptime_seconds() { return static_cast<double>(now_ns()) * 1e-9; }

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_enabled(bool on) { state().enabled.store(on, std::memory_order_relaxed); }

bool Tracer::enabled() const { return state().enabled.load(std::memory_order_relaxed); }

std::vector<SpanRecord> Tracer::snapshot() const {
  auto& s = state();
  std::lock_guard lock(s.mutex);
  std::vector<SpanRecord> all;
  for (const auto& buf : s.buffers) {
    all.insert(all.end(), buf.records.begin(), buf.records.end());
  }
  std::sort(all.begin(), all.end(), [](const SpanRecord& a, const SpanRecord& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.dur_ns > b.dur_ns;  // parents (longer) before children at a tie
  });
  return all;
}

void Tracer::clear() {
  auto& s = state();
  std::lock_guard lock(s.mutex);
  for (auto& buf : s.buffers) {
    buf.records.clear();
  }
}

Span::Span(const char* name) noexcept : name_(name) {
  auto& buf = local_buf();
  depth_ = buf.depth++;
  start_ns_ = now_ns();  // last: exclude buffer setup from the measurement
}

Span::~Span() { close(); }

double Span::close() noexcept {
  if (!open_) {
    return 0.0;
  }
  open_ = false;
  const std::int64_t end_ns = now_ns();
  auto& buf = local_buf();
  buf.depth = depth_;  // unwind even if an exception skipped inner closes
  if (state().enabled.load(std::memory_order_relaxed)) {
    SpanRecord record;
    record.name = name_;
    record.tid = buf.tid;
    record.depth = depth_;
    record.start_ns = start_ns_;
    record.dur_ns = end_ns - start_ns_;
    buf.records.push_back(std::move(record));
  }
  return static_cast<double>(end_ns - start_ns_) * 1e-9;
}

double Span::elapsed_seconds() const noexcept {
  return static_cast<double>(now_ns() - start_ns_) * 1e-9;
}

namespace {

void write_json_escaped(std::ostream& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

void write_chrome_trace(std::ostream& out, const std::vector<SpanRecord>& records) {
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const auto& record : records) {
    if (!first) {
      out << ",";
    }
    first = false;
    // Integer microseconds: floor() is monotone, so parent/child interval
    // containment survives the ns -> us conversion exactly.
    const std::int64_t ts_us = record.start_ns / 1000;
    const std::int64_t end_us = (record.start_ns + record.dur_ns) / 1000;
    out << "\n  {\"name\": \"";
    write_json_escaped(out, record.name);
    out << "\", \"cat\": \"seg\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << record.tid
        << ", \"ts\": " << ts_us << ", \"dur\": " << (end_us - ts_us) << "}";
  }
  out << "\n]}\n";
}

void write_chrome_trace(std::ostream& out) {
  write_chrome_trace(out, Tracer::instance().snapshot());
}

std::string validate_spans(const std::vector<SpanRecord>& records) {
  std::vector<SpanRecord> sorted = records;
  std::sort(sorted.begin(), sorted.end(), [](const SpanRecord& a, const SpanRecord& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.dur_ns > b.dur_ns;
  });
  std::vector<std::int64_t> stack;  // open parent end times for current tid
  std::uint32_t tid = 0;
  for (const auto& record : sorted) {
    if (record.start_ns < 0 || record.dur_ns < 0) {
      return "span '" + record.name + "' has a negative timestamp or duration";
    }
    if (record.tid != tid) {
      stack.clear();
      tid = record.tid;
    }
    const std::int64_t end = record.start_ns + record.dur_ns;
    // A span whose end is at or before this start is disjoint, not a parent.
    while (!stack.empty() && stack.back() <= record.start_ns) {
      stack.pop_back();
    }
    if (!stack.empty() && end > stack.back()) {
      return "span '" + record.name + "' overlaps its enclosing span without nesting";
    }
    stack.push_back(end);
  }
  return {};
}

}  // namespace seg::obs
