// Umbrella header for the seg::obs observability runtime: span tracing
// (trace.h), metrics registry (metrics.h), process sampling (process.h),
// and the run-report exporter (export.h). See docs/observability.md.
#pragma once

#include "util/obs/export.h"
#include "util/obs/metrics.h"
#include "util/obs/process.h"
#include "util/obs/trace.h"
