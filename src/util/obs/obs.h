// Umbrella header for the seg::obs observability runtime: span tracing
// (trace.h), metrics registry (metrics.h), process sampling (process.h),
// the run-report exporter (export.h), and the longitudinal v2 surface —
// per-day journal (journal.h), drift gauges (drift.h), and the live
// health sampler (health.h). See docs/observability.md.
#pragma once

#include "util/obs/drift.h"
#include "util/obs/export.h"
#include "util/obs/health.h"
#include "util/obs/journal.h"
#include "util/obs/metrics.h"
#include "util/obs/process.h"
#include "util/obs/trace.h"
