// Run-report exporter and validators for the obs output formats.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/obs/json_lite.h"
#include "util/obs/trace.h"

namespace seg::obs {

/// Writes the structured RunReport JSON: process resource sample, thread
/// count, every registered metric, and per-name span aggregates computed
/// from `records`. `command` names the run (e.g. the CLI subcommand).
void write_run_report(std::ostream& out, std::string_view command,
                      const std::vector<SpanRecord>& records);

/// Convenience: run report over Tracer::instance().snapshot().
void write_run_report(std::ostream& out, std::string_view command);

/// Checks a parsed Chrome trace document: traceEvents array of complete
/// ("ph":"X") events with string name and non-negative numeric ts/dur, and
/// per-tid spans properly nested. Empty string when OK.
std::string validate_chrome_trace(const json::Value& doc);

/// Checks a parsed RunReport document: version, command, process sample,
/// metrics section, and span aggregates with non-negative totals.
/// Empty string when OK.
std::string validate_run_report(const json::Value& doc);

}  // namespace seg::obs
