#include "util/obs/health.h"

#include <utility>

#include "util/obs/metrics.h"
#include "util/obs/process.h"
#include "util/obs/trace.h"
#include "util/require.h"

namespace seg::obs {

HealthSampler::HealthSampler(HealthOptions options) : options_(std::move(options)) {}

HealthSampler::~HealthSampler() {
  try {
    stop();
  } catch (...) {
    // A sampler failure discovered only at destruction has nowhere to go;
    // callers that care call stop() themselves and get the rethrow.
  }
}

void HealthSampler::start() {
  util::require(!thread_.joinable(), "HealthSampler::start: already running");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = false;
    error_ = nullptr;
  }
  thread_ = std::thread([this] {
    try {
      run_loop();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      error_ = std::current_exception();
    }
  });
}

void HealthSampler::stop() {
  if (thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_requested_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }
  std::exception_ptr pending;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending = std::exchange(error_, nullptr);
  }
  if (pending) {
    std::rethrow_exception(pending);
  }
}

bool HealthSampler::running() const { return thread_.joinable(); }

void HealthSampler::run_loop() {
  // The first sample is unconditional: start() guarantees at least one
  // completed sample even when stop() wins the race to set the flag
  // before this thread gets scheduled.
  std::unique_lock<std::mutex> lock(mutex_);
  do {
    lock.unlock();
    sample_once();
    lock.lock();
    cv_.wait_for(lock, options_.interval, [&] { return stop_requested_; });
  } while (!stop_requested_);
}

void HealthSampler::sample_once() {
  Registry& registry = Registry::instance();
  const std::int64_t now = now_ns();
  const std::uint64_t records = registry.counter(options_.records_counter).value();

  double rate = 0.0;
  {
    std::lock_guard<std::mutex> lock(sample_mutex_);
    if (has_last_ && now > last_ns_) {
      const double dt = static_cast<double>(now - last_ns_) * 1e-9;
      const double instantaneous =
          static_cast<double>(records - last_records_) / dt;
      ewma_rate_ = options_.ewma_alpha * instantaneous +
                   (1.0 - options_.ewma_alpha) * ewma_rate_;
    }
    last_ns_ = now;
    last_records_ = records;
    has_last_ = true;
    rate = ewma_rate_;
  }

  const std::string& prefix = options_.gauge_prefix;
  registry.gauge(prefix + "_records_per_sec_ewma").set(rate);
  registry.gauge(prefix + "_queue_depth")
      .set(registry.gauge(options_.queue_prefix + "_depth").value());
  registry.gauge(prefix + "_queue_drop_rate")
      .set(registry.gauge(options_.queue_prefix + "_drop_rate").value());

  const double current_day = registry.gauge(options_.current_day_gauge).value();
  const double watermark = registry.gauge(options_.watermark_gauge).value();
  const double lag = current_day > watermark ? current_day - watermark : 0.0;
  registry.gauge(prefix + "_day_lag").set(lag);

  const ProcessSample process = sample_process();
  registry.gauge(prefix + "_rss_now_kb").set(static_cast<double>(process.rss_now_kb));
  registry.gauge(prefix + "_rss_peak_kb").set(static_cast<double>(process.rss_peak_kb));
  registry.gauge(prefix + "_uptime_seconds").set(uptime_seconds());
  registry.counter(prefix + "_samples_total").add(1);
}

}  // namespace seg::obs
