// Process-wide metrics registry (the `seg::obs` runtime).
//
// Three metric kinds, all with thread-sharded storage so hot-path updates
// never contend on a shared cache line:
//
//   Counter    — monotonically increasing uint64 (merged value = exact sum
//                of the per-slot cells, so the merge is deterministic for
//                every thread count and interleaving);
//   Gauge      — last-written double (set from one thread at a time);
//   HistogramMetric — fixed upper-bound buckets over double observations;
//                bucket counts and the total count are integer sums and
//                therefore merge deterministically (the running `sum` of
//                observed values is merged in slot order and may differ in
//                the last ulp across thread placements — report counts, not
//                sums, when bit-stability matters).
//
// Metrics are telemetry only: nothing in the pipeline ever reads a metric
// to make a decision, so enabling/observing them cannot perturb scores or
// ordering (tests/core/pipeline_test.cpp asserts byte-identical output with
// obs fully enabled vs disabled).
//
// Handles returned by Registry::{counter,gauge,histogram} are valid until
// Registry::reset() (tests only); look metrics up by name at the call site
// rather than caching across resets.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace seg::obs {

/// Number of thread-sharded cells per metric. Thread slots are assigned on
/// first use and wrap modulo this, so unrelated threads may share a cell —
/// harmless for the commutative integer updates used here.
inline constexpr std::size_t kMetricSlots = 32;

/// Dense per-thread slot index in [0, kMetricSlots).
std::size_t metric_slot() noexcept;

namespace detail {
struct alignas(64) PaddedCell {
  std::atomic<std::uint64_t> value{0};
};
}  // namespace detail

class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    cells_[metric_slot()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Exact sum over all cells.
  std::uint64_t value() const noexcept;

  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::array<detail::PaddedCell, kMetricSlots> cells_;
};

class Gauge {
 public:
  void set(double value) noexcept;
  double value() const noexcept;

  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<std::uint64_t> bits_{0};  ///< bit-cast double
};

class HistogramMetric {
 public:
  /// Counts `value` into the first bucket whose upper bound is >= value
  /// (the implicit last bucket is +Inf).
  void observe(double value) noexcept;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Merged per-bucket counts, size bounds().size() + 1 (last = +Inf).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const;
  double sum() const;

  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  HistogramMetric(std::string name, std::vector<double> bounds);

  struct Cell {
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_bits{0};  ///< bit-cast double, CAS-updated
  };

  std::string name_;
  std::vector<double> bounds_;  ///< ascending upper bounds
  std::array<Cell, kMetricSlots> cells_;
};

/// `count` exponential bucket bounds: start, start*factor, start*factor^2...
std::vector<double> exponential_bounds(double start, double factor, std::size_t count);

/// The process-wide metric registry. Lookup is by full metric name
/// (Prometheus-style, e.g. "seg_build_records_total"); the first lookup
/// creates the metric, later lookups return the same object.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` is consulted only on the creating call; later lookups of the
  /// same name ignore it.
  HistogramMetric& histogram(std::string_view name, std::vector<double> bounds);

  /// Prometheus text exposition of every registered metric, sorted by name.
  void write_prometheus(std::ostream& out) const;

  /// Drops every metric (tests only). Outstanding handles dangle.
  void reset();

  /// Snapshot accessors for the run-report exporter; sorted by name.
  std::vector<const Counter*> counters() const;
  std::vector<const Gauge*> gauges() const;
  std::vector<const HistogramMetric*> histograms() const;

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>, std::less<>> histograms_;
};

}  // namespace seg::obs
