#include "util/obs/drift.h"

#include <cmath>
#include <map>
#include <string>

#include "util/logging.h"
#include "util/obs/metrics.h"
#include "util/require.h"

namespace seg::obs {

namespace {

// Smoothed bucket proportions: 0.5 pseudo-count per bucket keeps the log
// ratio finite when one side has an empty bucket.
std::vector<double> smoothed_proportions(const JournalHistogram& histogram) {
  const std::size_t buckets = histogram.buckets.size();
  const double denom =
      static_cast<double>(histogram.count) + 0.5 * static_cast<double>(buckets);
  std::vector<double> proportions(buckets);
  for (std::size_t i = 0; i < buckets; ++i) {
    proportions[i] = (static_cast<double>(histogram.buckets[i]) + 0.5) / denom;
  }
  return proportions;
}

void require_same_shape(const JournalHistogram& baseline, const JournalHistogram& current,
                        std::string_view what) {
  util::require(baseline.bounds == current.bounds &&
                    baseline.buckets.size() == current.buckets.size(),
                std::string(what) + ": histograms have different bounds");
}

/// "f1_infected_fraction" -> "f1"; empty when the name has no f<digit>_
/// group prefix.
std::string group_prefix(std::string_view name) {
  if (name.size() >= 3 && name[0] == 'f' && name[1] >= '0' && name[1] <= '9' &&
      name[2] == '_') {
    return std::string(name.substr(0, 2));
  }
  return {};
}

void maybe_alert(DriftResult& result, std::string_view gauge, double value,
                 double threshold) {
  if (value > threshold) {
    result.alerts.push_back({"seg_drift_" + std::string(gauge), value, threshold});
  }
}

}  // namespace

const double* DriftResult::find_gauge(std::string_view name) const {
  for (const auto& [key, value] : gauges) {
    if (key == name) {
      return &value;
    }
  }
  return nullptr;
}

double psi(const JournalHistogram& baseline, const JournalHistogram& current) {
  require_same_shape(baseline, current, "psi");
  const std::vector<double> p = smoothed_proportions(baseline);
  const std::vector<double> q = smoothed_proportions(current);
  double total = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    total += (q[i] - p[i]) * std::log(q[i] / p[i]);
  }
  return total;
}

double ks_statistic(const JournalHistogram& baseline, const JournalHistogram& current) {
  require_same_shape(baseline, current, "ks_statistic");
  if (baseline.count == 0 || current.count == 0) {
    return 0.0;
  }
  double cdf_p = 0.0;
  double cdf_q = 0.0;
  double max_gap = 0.0;
  for (std::size_t i = 0; i < baseline.buckets.size(); ++i) {
    cdf_p += static_cast<double>(baseline.buckets[i]) / static_cast<double>(baseline.count);
    cdf_q += static_cast<double>(current.buckets[i]) / static_cast<double>(current.count);
    const double gap = std::fabs(cdf_p - cdf_q);
    max_gap = gap > max_gap ? gap : max_gap;
  }
  return max_gap;
}

DriftResult compute_drift(const JournalEntry& baseline, const JournalEntry& current,
                          const DriftThresholds& thresholds) {
  DriftResult result;

  const JournalHistogram* base_scores = baseline.find_histogram("scores");
  const JournalHistogram* cur_scores = current.find_histogram("scores");
  if (base_scores && cur_scores && base_scores->bounds == cur_scores->bounds) {
    const double score_psi = psi(*base_scores, *cur_scores);
    const double score_ks = ks_statistic(*base_scores, *cur_scores);
    result.gauges.emplace_back("score_psi", score_psi);
    result.gauges.emplace_back("score_ks", score_ks);
    maybe_alert(result, "score_psi", score_psi, thresholds.score_psi);
    maybe_alert(result, "score_ks", score_ks, thresholds.score_ks);
  }

  // Per-feature PSI over every shared non-score histogram, in the current
  // entry's insertion order, with per-group (f1/f2/f3) means aggregated in
  // first-seen group order.
  std::vector<std::pair<std::string, std::pair<double, std::size_t>>> groups;
  for (const auto& [name, cur_hist] : current.histograms) {
    if (name == "scores") {
      continue;
    }
    const JournalHistogram* base_hist = baseline.find_histogram(name);
    if (!base_hist || base_hist->bounds != cur_hist.bounds) {
      continue;
    }
    const double feature_psi = psi(*base_hist, cur_hist);
    result.gauges.emplace_back("psi_" + name, feature_psi);
    const std::string group = group_prefix(name);
    if (!group.empty()) {
      bool found = false;
      for (auto& [key, accum] : groups) {
        if (key == group) {
          accum.first += feature_psi;
          ++accum.second;
          found = true;
          break;
        }
      }
      if (!found) {
        groups.emplace_back(group, std::make_pair(feature_psi, std::size_t{1}));
      }
    }
  }
  for (const auto& [group, accum] : groups) {
    const double mean_psi = accum.first / static_cast<double>(accum.second);
    result.gauges.emplace_back("group_psi_" + group, mean_psi);
    maybe_alert(result, "group_psi_" + group, mean_psi, thresholds.feature_psi);
  }

  const double* base_threshold = baseline.find_gauge("calibration_threshold");
  const double* cur_threshold = current.find_gauge("calibration_threshold");
  if (base_threshold && cur_threshold) {
    const double delta = std::fabs(*cur_threshold - *base_threshold);
    result.gauges.emplace_back("calibration_delta", delta);
    maybe_alert(result, "calibration_delta", delta, thresholds.calibration_delta);
  }

  return result;
}

void export_drift(const DriftResult& result, std::string_view prefix) {
  Registry& registry = Registry::instance();
  for (const auto& [name, value] : result.gauges) {
    registry.gauge(std::string(prefix) + "_" + name).set(value);
  }
  if (!result.alerts.empty()) {
    registry.counter(std::string(prefix) + "_alerts_total").add(result.alerts.size());
    for (const JournalAlert& alert : result.alerts) {
      util::log_warn("drift alert: ", alert.gauge, " = ", alert.value,
                     " exceeds threshold ", alert.threshold);
    }
  }
}

}  // namespace seg::obs
