#include "util/histogram.h"

#include <algorithm>
#include <sstream>

#include "util/require.h"
#include "util/strings.h"

namespace seg::util {

void Histogram::add(std::uint64_t value, std::uint64_t count) {
  counts_[value] += count;
  total_ += count;
}

std::uint64_t Histogram::count(std::uint64_t value) const {
  const auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

std::uint64_t Histogram::min_value() const {
  require(!counts_.empty(), "Histogram::min_value: empty histogram");
  return counts_.begin()->first;
}

std::uint64_t Histogram::max_value() const {
  require(!counts_.empty(), "Histogram::max_value: empty histogram");
  return counts_.rbegin()->first;
}

double Histogram::mean() const {
  require(total_ > 0, "Histogram::mean: empty histogram");
  double sum = 0.0;
  for (const auto& [value, count] : counts_) {
    sum += static_cast<double>(value) * static_cast<double>(count);
  }
  return sum / static_cast<double>(total_);
}

double Histogram::fraction_above(std::uint64_t threshold) const {
  if (total_ == 0) {
    return 0.0;
  }
  std::uint64_t above = 0;
  for (auto it = counts_.upper_bound(threshold); it != counts_.end(); ++it) {
    above += it->second;
  }
  return static_cast<double>(above) / static_cast<double>(total_);
}

std::uint64_t Histogram::quantile(double q) const {
  require(total_ > 0, "Histogram::quantile: empty histogram");
  require(q >= 0.0 && q <= 1.0, "Histogram::quantile: q must be in [0,1]");
  const double target = q * static_cast<double>(total_);
  std::uint64_t cumulative = 0;
  for (const auto& [value, count] : counts_) {
    cumulative += count;
    if (static_cast<double>(cumulative) >= target) {
      return value;
    }
  }
  return counts_.rbegin()->first;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Histogram::items() const {
  return {counts_.begin(), counts_.end()};
}

std::string Histogram::render(std::size_t max_rows, std::size_t width) const {
  if (counts_.empty()) {
    return "(empty histogram)\n";
  }
  std::uint64_t modal = 0;
  for (const auto& [value, count] : counts_) {
    modal = std::max(modal, count);
  }
  std::ostringstream os;
  std::size_t rows = 0;
  std::uint64_t tail_count = 0;
  std::uint64_t tail_start = 0;
  for (const auto& [value, count] : counts_) {
    if (rows + 1 >= max_rows && counts_.size() > max_rows) {
      if (tail_count == 0) {
        tail_start = value;
      }
      tail_count += count;
      continue;
    }
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(count) / static_cast<double>(modal) * static_cast<double>(width));
    os << "  " << value << "\t" << count << "\t("
       << format_double(100.0 * static_cast<double>(count) / static_cast<double>(total_), 2)
       << "%)\t" << std::string(bar, '#') << "\n";
    ++rows;
  }
  if (tail_count > 0) {
    os << "  >=" << tail_start << "\t" << tail_count << "\t("
       << format_double(100.0 * static_cast<double>(tail_count) / static_cast<double>(total_), 2)
       << "%)\n";
  }
  return os.str();
}

}  // namespace seg::util
