// Read-only memory-mapped files — the project's single mmap wrapper.
//
// All raw mmap/munmap/mbind calls in the tree live in mmap_file.cpp
// (enforced by seg-lint rule R-MEM1): mapping lifetime bugs and NUMA
// placement policy are concentrated in one reviewed translation unit.
//
// NUMA placement (the shard-residency work's ROADMAP item) is applied at
// map time from the SEG_NUMA_POLICY environment variable:
//
//   SEG_NUMA_POLICY=firsttouch   default; no explicit policy — pages land
//                                on the node of the thread that first
//                                touches them (the shard's owning worker).
//   SEG_NUMA_POLICY=interleave   pages are interleaved across NUMA nodes,
//                                for read-mostly mappings scanned by many
//                                workers (the mapped graph under parallel
//                                classify).
//
// Unknown values and platforms without mbind are silently first-touch; a
// failed policy call is a no-op, never an error — placement is a hint.
#pragma once

#include <cstddef>
#include <string>

namespace seg::util {

class MmapFile {
 public:
  MmapFile() = default;

  /// Maps `path` read-only. Throws util::ParseError when the file cannot
  /// be opened or mapped. An empty file maps to data() == nullptr,
  /// size() == 0 with is_open() true.
  explicit MmapFile(const std::string& path);

  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;

  const unsigned char* data() const { return static_cast<const unsigned char*>(data_); }
  std::size_t size() const { return size_; }
  bool is_open() const { return open_; }

  /// Unmaps now (also done by the destructor).
  void close();

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
  bool open_ = false;
};

/// Applies the SEG_NUMA_POLICY placement hint to [addr, addr + length).
/// Called by MmapFile's constructor; exposed so arena-style callers can
/// place heap shards the same way. Always succeeds (failures are ignored).
void apply_numa_policy(void* addr, std::size_t length);

}  // namespace seg::util
