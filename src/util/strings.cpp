#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <sstream>

#include "util/require.h"

namespace seg::util {

std::vector<std::string_view> split(std::string_view input, char delimiter) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.push_back(input.substr(start));
      return out;
    }
    out.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_skip_empty(std::string_view input, char delimiter) {
  std::vector<std::string_view> out;
  for (auto part : split(input, delimiter)) {
    if (!part.empty()) {
      out.push_back(part);
    }
  }
  return out;
}

namespace {
template <typename Container>
std::string join_impl(const Container& parts, std::string_view delimiter) {
  std::string out;
  bool first = true;
  for (const auto& part : parts) {
    if (!first) {
      out += delimiter;
    }
    out += part;
    first = false;
  }
  return out;
}
}  // namespace

std::string join(const std::vector<std::string_view>& parts, std::string_view delimiter) {
  return join_impl(parts, delimiter);
}

std::string join(const std::vector<std::string>& parts, std::string_view delimiter) {
  return join_impl(parts, delimiter);
}

std::string_view trim(std::string_view input) {
  std::size_t begin = 0;
  std::size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin])) != 0) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1])) != 0) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string to_lower(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  for (char c : input) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::uint64_t parse_u64(std::string_view text) {
  text = trim(text);
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  require_data(ec == std::errc() && ptr == text.data() + text.size(),
               "parse_u64: malformed unsigned integer: '" + std::string(text) + "'");
  return value;
}

double parse_double(std::string_view text) {
  text = trim(text);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  require_data(ec == std::errc() && ptr == text.data() + text.size(),
               "parse_double: malformed floating-point value: '" + std::string(text) + "'");
  return value;
}

std::string format_double(double value, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << value;
  return os.str();
}

std::string format_count(std::uint64_t value) {
  const auto scaled = [&](double divisor, const char* suffix) {
    std::ostringstream os;
    const double v = static_cast<double>(value) / divisor;
    os.setf(std::ios::fixed);
    os.precision(v >= 100 ? 0 : (v >= 10 ? 1 : 2));
    os << v << suffix;
    return os.str();
  };
  if (value >= 1'000'000'000ULL) {
    return scaled(1e9, "B");
  }
  if (value >= 1'000'000ULL) {
    return scaled(1e6, "M");
  }
  if (value >= 10'000ULL) {
    return scaled(1e3, "K");
  }
  return std::to_string(value);
}

}  // namespace seg::util
