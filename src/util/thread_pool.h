// Fixed-size thread pool with a parallel_for convenience wrapper.
//
// Random-forest training and per-domain feature extraction are
// embarrassingly parallel; the pool lets them scale with available cores
// while remaining deterministic (work is partitioned statically by index,
// and all RNG streams are pre-forked per work item).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace seg::util {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, count), partitioned into contiguous chunks
  /// across the pool, and blocks until all complete. Exceptions from tasks
  /// are rethrown (first one wins).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace seg::util
