// Fixed-width text table renderer for paper-style report output.
#pragma once

#include <string>
#include <vector>

namespace seg::util {

/// Accumulates rows of string cells and renders them as an aligned
/// plain-text table with a header rule, e.g.
///
///   Traffic Source   | Domains | Machines
///   -----------------+---------+---------
///   ISP1, Day 1      | 9.0M    | 1.6M
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  std::size_t row_count() const { return rows_.size(); }

  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace seg::util
