#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/require.h"

namespace seg::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "TextTable: header must not be empty");
}

void TextTable::add_row(std::vector<std::string> row) {
  require(row.size() == header_.size(), "TextTable::add_row: wrong number of cells");
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : " | ") << row[c]
         << std::string(widths[c] - row[c].size(), ' ');
    }
    os << "\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "" : "-+-") << std::string(widths[c], '-');
  }
  os << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

}  // namespace seg::util
