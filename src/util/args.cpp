#include "util/args.h"

#include <algorithm>

#include "util/require.h"
#include "util/strings.h"

namespace seg::util {

Args::Args(int argc, const char* const* argv, const std::vector<std::string>& flag_names) {
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    const auto body = arg.substr(2);
    require_data(!body.empty(), "Args: bare '--' is not a valid option");
    if (const auto eq = body.find('='); eq != std::string_view::npos) {
      values_.emplace(std::string(body.substr(0, eq)), std::string(body.substr(eq + 1)));
      continue;
    }
    const std::string key(body);
    if (std::find(flag_names.begin(), flag_names.end(), key) != flag_names.end()) {
      values_.emplace(key, "");
      continue;
    }
    require_data(i + 1 < argc, "Args: option '--" + key + "' expects a value");
    values_.emplace(key, argv[++i]);
  }
}

bool Args::has(std::string_view key) const {
  return values_.contains(std::string(key));
}

std::string Args::get(std::string_view key) const {
  const auto it = values_.find(std::string(key));
  require_data(it != values_.end(), "Args: missing required option '--" + std::string(key) + "'");
  return it->second;
}

std::string Args::get_or(std::string_view key, std::string_view fallback) const {
  const auto it = values_.find(std::string(key));
  return it == values_.end() ? std::string(fallback) : it->second;
}

std::int64_t Args::get_int_or(std::string_view key, std::int64_t fallback) const {
  const auto it = values_.find(std::string(key));
  if (it == values_.end()) {
    return fallback;
  }
  return static_cast<std::int64_t>(parse_double(it->second));
}

double Args::get_double_or(std::string_view key, double fallback) const {
  const auto it = values_.find(std::string(key));
  return it == values_.end() ? fallback : parse_double(it->second);
}

}  // namespace seg::util
