#include "util/thread_pool.h"

#include <algorithm>
#include <exception>

namespace seg::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) {
    return;
  }
  const std::size_t chunks = std::min(count, std::max<std::size_t>(1, workers_.size() * 4));
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(count, begin + chunk_size);
    if (begin >= end) {
      break;
    }
    futures.push_back(submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) {
        fn(i);
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace seg::util
