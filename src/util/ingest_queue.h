// Bounded MPSC ingest queue: the hand-off between wire-format producers
// and the pipeline consumer.
//
// Continuous ingestion decouples parsing (dnstap/pcap/binlog readers, one
// or more producer threads) from graph preparation (the pipeline's caller
// thread) through a bounded queue of record *batches* — micro-batching
// amortizes the lock so the queue never becomes the bottleneck at the
// 10^4-10^5 qps the ROADMAP targets.
//
// Back-pressure is a policy choice made at construction time:
//
//   kBlock        push() waits for space. Nothing is ever lost, so a
//                 replayed stream is deterministic: the consumer sees
//                 exactly the bytes of the source, in order. This is the
//                 only policy under which streamed output is bit-identical
//                 to day-batch output (and the default everywhere).
//   kCountAndDrop push() on a full queue drops the batch and counts it.
//                 For live capture where freshness beats completeness; the
//                 drop counter is the operator's signal to add capacity.
//                 With `sampled_admission` on, sustained drops additionally
//                 engage probabilistic per-record admission: an EWMA of
//                 push outcomes drives an admit probability (mirrored as
//                 the `<prefix>_drop_rate` / `<prefix>_admit_permille`
//                 gauges), and incoming batches are thinned record-by-
//                 record with a deterministic LCG before enqueueing, so
//                 overload sheds a *uniform sample* of the stream instead
//                 of whole contiguous batches. Whole-batch drop remains
//                 the last resort when the queue is full. The ledger stays
//                 exact: offered records ==
//                 pushed_records + dropped_records + sampled_out_records.
//
// Both policies are observable through seg::obs: construction registers
// counters/gauges under `metrics_prefix` (see stats() for the catalog), so
// a deployment can alert on `<prefix>_dropped_batches_total` without
// touching the queue itself.
//
// Shutdown/drain protocol:
//
//   producer:  while (more) queue.push(batch);   queue.close();
//   consumer:  while (auto b = queue.pop()) consume(*b);   // drains, then
//              // pop() returns nullopt once closed AND empty
//
// cancel() aborts from the consumer side: pending batches are discarded
// and every blocked or future push() returns false immediately, so a dying
// consumer never strands a blocked producer.
//
// Ordering guarantee: batches from one producer are popped in push order
// (FIFO). With a single producer the consumed sequence is exactly the
// produced sequence — the property the determinism tests lean on.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "util/obs/metrics.h"

namespace seg::util {

/// What a full queue does to push(); see the header comment.
enum class BackpressurePolicy {
  kBlock,
  kCountAndDrop,
};

/// Cumulative queue counters, readable at any time (values are snapshots;
/// totals are exact once the queue is closed and drained).
struct IngestQueueStats {
  std::uint64_t pushed_batches = 0;   ///< batches accepted into the queue
  std::uint64_t pushed_records = 0;   ///< records inside accepted batches
  std::uint64_t popped_batches = 0;   ///< batches handed to the consumer
  std::uint64_t dropped_batches = 0;  ///< rejected under kCountAndDrop
  std::uint64_t dropped_records = 0;  ///< records inside rejected batches
  std::uint64_t sampled_out_records = 0;  ///< thinned by sampled admission
  std::uint64_t blocked_pushes = 0;   ///< pushes that had to wait (kBlock)
  std::size_t max_depth = 0;          ///< high-water mark of queued batches
  std::size_t depth = 0;              ///< batches queued right now
};

struct IngestQueueOptions {
  std::size_t capacity = 256;  ///< max queued batches before back-pressure
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
  /// When non-empty, queue counters are mirrored into the seg::obs
  /// registry as `<prefix>_{pushed,dropped}_batches_total`,
  /// `<prefix>_{pushed,dropped}_records_total`,
  /// `<prefix>_sampled_out_records_total`,
  /// `<prefix>_blocked_pushes_total`, and gauges `<prefix>_depth` /
  /// `<prefix>_max_depth` / `<prefix>_drop_rate` /
  /// `<prefix>_admit_permille`.
  std::string metrics_prefix;
  /// kCountAndDrop only: thin incoming batches per-record once drops are
  /// observed, instead of shedding only whole batches (see the header
  /// comment). Requires Batch to support begin()/end()/erase(); silently
  /// ignored otherwise.
  bool sampled_admission = false;
  /// EWMA smoothing for the per-push drop-rate estimate behind sampled
  /// admission (1 = react to the last push only).
  double drop_rate_alpha = 0.2;
  /// Floor of the admit probability, in permille: even under total
  /// overload at least this fraction of records is kept, so the consumer
  /// always sees a trickle of fresh data.
  std::uint32_t min_admit_permille = 100;
};

/// Bounded multi-producer single-consumer queue of batches. `Batch` must
/// be movable and expose size() (the record count used by the drop/push
/// record counters).
template <typename Batch>
class IngestQueue {
 public:
  explicit IngestQueue(IngestQueueOptions options = {}) : options_(std::move(options)) {
    if (options_.capacity == 0) {
      options_.capacity = 1;
    }
  }

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  /// Enqueues one batch. Returns true when the batch was accepted; false
  /// when it was dropped (kCountAndDrop on a full queue) or the queue was
  /// closed/cancelled. Safe from any number of producer threads.
  bool push(Batch batch) {
    std::size_t records = batch.size();
    std::unique_lock<std::mutex> lock(mutex_);
    if (options_.policy == BackpressurePolicy::kBlock) {
      if (queue_.size() >= options_.capacity && !closed_) {
        ++stats_.blocked_pushes;
        bump("_blocked_pushes_total", 1);
        space_.wait(lock,
                    [&] { return queue_.size() < options_.capacity || closed_; });
      }
    } else if (queue_.size() >= options_.capacity && !closed_) {
      // Whole-batch drop: the last resort even under sampled admission.
      note_push_outcome(true);
      ++stats_.dropped_batches;
      stats_.dropped_records += records;
      bump("_dropped_batches_total", 1);
      bump("_dropped_records_total", records);
      return false;
    } else if (!closed_) {
      note_push_outcome(false);
      if (options_.sampled_admission && admit_permille_ < 1000 && records > 0) {
        thin_batch(batch);
        const std::size_t removed = records - batch.size();
        if (removed > 0) {
          stats_.sampled_out_records += removed;
          bump("_sampled_out_records_total", removed);
        }
        records = batch.size();
        if (records == 0) {
          return true;  // fully sampled out, but nothing was *dropped*
        }
      }
    }
    if (closed_) {
      return false;  // close()/cancel() won the race; the batch is refused
    }
    queue_.push_back(std::move(batch));
    ++stats_.pushed_batches;
    stats_.pushed_records += records;
    stats_.max_depth = queue_.size() > stats_.max_depth ? queue_.size() : stats_.max_depth;
    bump("_pushed_batches_total", 1);
    bump("_pushed_records_total", records);
    set_gauge("_depth", static_cast<double>(queue_.size()));
    set_gauge("_max_depth", static_cast<double>(stats_.max_depth));
    lock.unlock();
    ready_.notify_one();
    return true;
  }

  /// Dequeues the next batch, blocking while the queue is empty and still
  /// open. Returns nullopt once the queue is closed and fully drained
  /// (the consumer's signal to stop). Single consumer thread only.
  std::optional<Batch> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) {
      return std::nullopt;
    }
    Batch batch = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.popped_batches;
    set_gauge("_depth", static_cast<double>(queue_.size()));
    lock.unlock();
    space_.notify_all();
    return batch;
  }

  /// Producer-side end-of-stream: already-queued batches remain poppable;
  /// further pushes are refused; pop() returns nullopt once drained.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
    space_.notify_all();
  }

  /// Consumer-side abort: close() plus discarding everything still queued,
  /// so blocked producers wake immediately and nothing waits on a consumer
  /// that is going away.
  void cancel() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      queue_.clear();
      set_gauge("_depth", 0.0);
    }
    ready_.notify_all();
    space_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  IngestQueueStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    IngestQueueStats snapshot = stats_;
    snapshot.depth = queue_.size();
    return snapshot;
  }

  const IngestQueueOptions& options() const { return options_; }

 private:
  // Metrics are mirrored only for named queues; an unnamed queue (tests,
  // short-lived adapters) never touches the registry.
  void bump(const char* suffix, std::uint64_t delta) {
    if (!options_.metrics_prefix.empty()) {
      obs::Registry::instance().counter(options_.metrics_prefix + suffix).add(delta);
    }
  }
  void set_gauge(const char* suffix, double value) {
    if (!options_.metrics_prefix.empty()) {
      obs::Registry::instance().gauge(options_.metrics_prefix + suffix).set(value);
    }
  }

  // Folds one push outcome (dropped or admitted) into the drop-rate EWMA
  // and recomputes the admit probability. Called with mutex_ held, on the
  // kCountAndDrop path only.
  void note_push_outcome(bool dropped) {
    drop_rate_ = options_.drop_rate_alpha * (dropped ? 1.0 : 0.0) +
                 (1.0 - options_.drop_rate_alpha) * drop_rate_;
    double admit = 1000.0 * (1.0 - drop_rate_);
    if (admit < static_cast<double>(options_.min_admit_permille)) {
      admit = static_cast<double>(options_.min_admit_permille);
    }
    admit_permille_ = static_cast<std::uint32_t>(admit);
    set_gauge("_drop_rate", drop_rate_);
    set_gauge("_admit_permille", static_cast<double>(admit_permille_));
  }

  // Keeps each record independently with probability admit_permille_/1000,
  // driven by a fixed-seed LCG so a given (push sequence, drop pattern)
  // thins reproducibly. Compiled out for batch types without erase().
  void thin_batch(Batch& batch) {
    if constexpr (requires(Batch& b) { b.erase(b.begin()); }) {
      for (auto it = batch.begin(); it != batch.end();) {
        sample_state_ = sample_state_ * 6364136223846793005ull + 1442695040888963407ull;
        if ((sample_state_ >> 33) % 1000 < admit_permille_) {
          ++it;
        } else {
          it = batch.erase(it);
        }
      }
    }
  }

  IngestQueueOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;  ///< consumer waits: queue non-empty or closed
  std::condition_variable space_;  ///< producers wait: space available or closed
  std::deque<Batch> queue_;
  IngestQueueStats stats_;
  bool closed_ = false;
  double drop_rate_ = 0.0;               ///< EWMA of push outcomes (1 = dropped)
  std::uint32_t admit_permille_ = 1000;  ///< derived admit probability
  std::uint64_t sample_state_ = 0x9e3779b97f4a7c15ull;  ///< LCG state
};

}  // namespace seg::util
