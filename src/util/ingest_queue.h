// Bounded MPSC ingest queue: the hand-off between wire-format producers
// and the pipeline consumer.
//
// Continuous ingestion decouples parsing (dnstap/pcap/binlog readers, one
// or more producer threads) from graph preparation (the pipeline's caller
// thread) through a bounded queue of record *batches* — micro-batching
// amortizes the lock so the queue never becomes the bottleneck at the
// 10^4-10^5 qps the ROADMAP targets.
//
// Back-pressure is a policy choice made at construction time:
//
//   kBlock        push() waits for space. Nothing is ever lost, so a
//                 replayed stream is deterministic: the consumer sees
//                 exactly the bytes of the source, in order. This is the
//                 only policy under which streamed output is bit-identical
//                 to day-batch output (and the default everywhere).
//   kCountAndDrop push() on a full queue drops the batch and counts it.
//                 For live capture where freshness beats completeness; the
//                 drop counter is the operator's signal to add capacity.
//
// Both policies are observable through seg::obs: construction registers
// counters/gauges under `metrics_prefix` (see stats() for the catalog), so
// a deployment can alert on `<prefix>_dropped_batches_total` without
// touching the queue itself.
//
// Shutdown/drain protocol:
//
//   producer:  while (more) queue.push(batch);   queue.close();
//   consumer:  while (auto b = queue.pop()) consume(*b);   // drains, then
//              // pop() returns nullopt once closed AND empty
//
// cancel() aborts from the consumer side: pending batches are discarded
// and every blocked or future push() returns false immediately, so a dying
// consumer never strands a blocked producer.
//
// Ordering guarantee: batches from one producer are popped in push order
// (FIFO). With a single producer the consumed sequence is exactly the
// produced sequence — the property the determinism tests lean on.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "util/obs/metrics.h"

namespace seg::util {

/// What a full queue does to push(); see the header comment.
enum class BackpressurePolicy {
  kBlock,
  kCountAndDrop,
};

/// Cumulative queue counters, readable at any time (values are snapshots;
/// totals are exact once the queue is closed and drained).
struct IngestQueueStats {
  std::uint64_t pushed_batches = 0;   ///< batches accepted into the queue
  std::uint64_t pushed_records = 0;   ///< records inside accepted batches
  std::uint64_t popped_batches = 0;   ///< batches handed to the consumer
  std::uint64_t dropped_batches = 0;  ///< rejected under kCountAndDrop
  std::uint64_t dropped_records = 0;  ///< records inside rejected batches
  std::uint64_t blocked_pushes = 0;   ///< pushes that had to wait (kBlock)
  std::size_t max_depth = 0;          ///< high-water mark of queued batches
  std::size_t depth = 0;              ///< batches queued right now
};

struct IngestQueueOptions {
  std::size_t capacity = 256;  ///< max queued batches before back-pressure
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
  /// When non-empty, queue counters are mirrored into the seg::obs
  /// registry as `<prefix>_{pushed,dropped}_batches_total`,
  /// `<prefix>_{pushed,dropped}_records_total`,
  /// `<prefix>_blocked_pushes_total`, and gauges `<prefix>_depth` /
  /// `<prefix>_max_depth`.
  std::string metrics_prefix;
};

/// Bounded multi-producer single-consumer queue of batches. `Batch` must
/// be movable and expose size() (the record count used by the drop/push
/// record counters).
template <typename Batch>
class IngestQueue {
 public:
  explicit IngestQueue(IngestQueueOptions options = {}) : options_(std::move(options)) {
    if (options_.capacity == 0) {
      options_.capacity = 1;
    }
  }

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  /// Enqueues one batch. Returns true when the batch was accepted; false
  /// when it was dropped (kCountAndDrop on a full queue) or the queue was
  /// closed/cancelled. Safe from any number of producer threads.
  bool push(Batch batch) {
    const std::size_t records = batch.size();
    std::unique_lock<std::mutex> lock(mutex_);
    if (options_.policy == BackpressurePolicy::kBlock) {
      if (queue_.size() >= options_.capacity && !closed_) {
        ++stats_.blocked_pushes;
        bump("_blocked_pushes_total", 1);
        space_.wait(lock,
                    [&] { return queue_.size() < options_.capacity || closed_; });
      }
    } else if (queue_.size() >= options_.capacity && !closed_) {
      ++stats_.dropped_batches;
      stats_.dropped_records += records;
      bump("_dropped_batches_total", 1);
      bump("_dropped_records_total", records);
      return false;
    }
    if (closed_) {
      return false;  // close()/cancel() won the race; the batch is refused
    }
    queue_.push_back(std::move(batch));
    ++stats_.pushed_batches;
    stats_.pushed_records += records;
    stats_.max_depth = queue_.size() > stats_.max_depth ? queue_.size() : stats_.max_depth;
    bump("_pushed_batches_total", 1);
    bump("_pushed_records_total", records);
    set_gauge("_depth", static_cast<double>(queue_.size()));
    set_gauge("_max_depth", static_cast<double>(stats_.max_depth));
    lock.unlock();
    ready_.notify_one();
    return true;
  }

  /// Dequeues the next batch, blocking while the queue is empty and still
  /// open. Returns nullopt once the queue is closed and fully drained
  /// (the consumer's signal to stop). Single consumer thread only.
  std::optional<Batch> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) {
      return std::nullopt;
    }
    Batch batch = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.popped_batches;
    set_gauge("_depth", static_cast<double>(queue_.size()));
    lock.unlock();
    space_.notify_all();
    return batch;
  }

  /// Producer-side end-of-stream: already-queued batches remain poppable;
  /// further pushes are refused; pop() returns nullopt once drained.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
    space_.notify_all();
  }

  /// Consumer-side abort: close() plus discarding everything still queued,
  /// so blocked producers wake immediately and nothing waits on a consumer
  /// that is going away.
  void cancel() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      queue_.clear();
      set_gauge("_depth", 0.0);
    }
    ready_.notify_all();
    space_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  IngestQueueStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    IngestQueueStats snapshot = stats_;
    snapshot.depth = queue_.size();
    return snapshot;
  }

  const IngestQueueOptions& options() const { return options_; }

 private:
  // Metrics are mirrored only for named queues; an unnamed queue (tests,
  // short-lived adapters) never touches the registry.
  void bump(const char* suffix, std::uint64_t delta) {
    if (!options_.metrics_prefix.empty()) {
      obs::Registry::instance().counter(options_.metrics_prefix + suffix).add(delta);
    }
  }
  void set_gauge(const char* suffix, double value) {
    if (!options_.metrics_prefix.empty()) {
      obs::Registry::instance().gauge(options_.metrics_prefix + suffix).set(value);
    }
  }

  IngestQueueOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;  ///< consumer waits: queue non-empty or closed
  std::condition_variable space_;  ///< producers wait: space available or closed
  std::deque<Batch> queue_;
  IngestQueueStats stats_;
  bool closed_ = false;
};

}  // namespace seg::util
