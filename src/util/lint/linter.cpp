#include "util/lint/linter.h"

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "util/lint/analysis_cache.h"
#include "util/lint/call_graph.h"
#include "util/lint/dataflow.h"
#include "util/lint/project_model.h"
#include "util/lint/symbol_index.h"
#include "util/parallel.h"

namespace seg::lint {

namespace fs = std::filesystem;

namespace {

bool path_contains(std::string_view path, const std::vector<std::string>& needles) {
  return std::any_of(needles.begin(), needles.end(), [&](const std::string& needle) {
    return path.find(needle) != std::string_view::npos;
  });
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

// Resolves a quoted include against the including file's directory and the
// configured include roots. Returns an empty path when not found.
fs::path resolve_include(const std::string& target, const fs::path& including_dir,
                         const LintOptions& options) {
  std::error_code ec;
  const fs::path sibling = including_dir / target;
  if (fs::is_regular_file(sibling, ec)) {
    return sibling;
  }
  for (const auto& root : options.include_roots) {
    const fs::path candidate = fs::path(root) / target;
    if (fs::is_regular_file(candidate, ec)) {
      return candidate;
    }
    // Includes are typically rooted at src/ ("graph/graph.h"); also try the
    // root's parent so passing `src/graph` as a root still resolves them.
    const fs::path from_parent = fs::path(root).parent_path() / target;
    if (fs::is_regular_file(from_parent, ec)) {
      return from_parent;
    }
  }
  return {};
}

// Collects unordered-container and seg-deprecated declarations from
// `source` and, recursively, from every reachable quoted include (project
// headers only).
void collect_decls_recursive(const std::string& source, const fs::path& dir,
                             const LintOptions& options,
                             std::unordered_set<std::string>& visited,
                             UnorderedDecls& decls, DeprecatedDecls& deprecated) {
  const LexResult lexed = lex(source);
  collect_unordered_decls(lexed.tokens, decls);
  collect_deprecated_decls(lexed, deprecated);
  for (const auto& directive : lexed.includes) {
    if (!directive.quoted) {
      continue;
    }
    const fs::path resolved = resolve_include(directive.target, dir, options);
    if (resolved.empty()) {
      continue;
    }
    std::error_code ec;
    const fs::path canonical = fs::weakly_canonical(resolved, ec);
    const std::string key = (ec ? resolved : canonical).string();
    if (!visited.insert(key).second) {
      continue;
    }
    std::string text;
    if (read_file(resolved, text)) {
      collect_decls_recursive(text, resolved.parent_path(), options, visited, decls,
                              deprecated);
    }
  }
}

bool is_header_path(std::string_view path) {
  return path.size() >= 2 && path.substr(path.size() - 2) == ".h";
}

bool is_test_path(std::string_view path) {
  if (path.find("tests/") != std::string_view::npos) {
    return true;
  }
  constexpr std::string_view kSuffix = "_test.cpp";
  return path.size() >= kSuffix.size() &&
         path.substr(path.size() - kSuffix.size()) == kSuffix;
}

std::vector<Finding> filter_rules(std::vector<Finding> findings,
                                  const LintOptions& options) {
  if (options.only_rules.empty()) {
    return findings;
  }
  std::vector<Finding> kept;
  for (auto& finding : findings) {
    if (std::find(options.only_rules.begin(), options.only_rules.end(),
                  finding.rule) != options.only_rules.end()) {
      kept.push_back(std::move(finding));
    }
  }
  return kept;
}

}  // namespace

bool is_emission_file(std::string_view path, const std::vector<Token>& tokens,
                      const LintOptions& options) {
  if (path_contains(path, options.emission_paths)) {
    return true;
  }
  static constexpr std::array<std::string_view, 12> kOutputTokens = {
      "ostream", "ofstream", "fstream",  "ostringstream", "iostream", "printf",
      "fprintf", "fputs",    "fwrite",   "cout",          "cerr",     "to_csv",
  };
  return std::any_of(tokens.begin(), tokens.end(), [](const Token& tok) {
    return tok.kind == TokKind::kIdentifier &&
           std::find(kOutputTokens.begin(), kOutputTokens.end(), tok.text) !=
               kOutputTokens.end();
  });
}

std::vector<Finding> lint_text(std::string_view path, std::string_view text,
                               const LintOptions& options,
                               std::string_view extra_header_text) {
  const LexResult lexed = lex(text);

  UnorderedDecls decls;
  DeprecatedDecls deprecated;
  if (!extra_header_text.empty()) {
    const LexResult header = lex(extra_header_text);
    collect_unordered_decls(header.tokens, decls);
    collect_deprecated_decls(header, deprecated);
  }
  collect_unordered_decls(lexed.tokens, decls);
  collect_deprecated_decls(lexed, deprecated);

  FileInfo info;
  info.path = std::string(path);
  info.is_header = is_header_path(path);
  info.emission = is_emission_file(path, lexed.tokens, options);
  info.timing_allowed = path_contains(path, options.timing_allowlist);
  info.is_test = is_test_path(path);
  info.obs_allowed = path_contains(path, options.obs_allowlist);
  info.mmap_allowed = path_contains(path, options.mmap_allowlist);
  info.wire_scope = path_contains(path, options.wire_paths);
  info.wire_allowed = path_contains(path, options.wire_allowlist);

  return filter_rules(run_rules(info, lexed, decls, deprecated), options);
}

std::vector<Finding> lint_file(const std::string& path, const LintOptions& options) {
  std::string text;
  if (!read_file(path, text)) {
    return {Finding{path, 0, "IO", "cannot read file"}};
  }
  const LexResult lexed = lex(text);

  UnorderedDecls decls;
  DeprecatedDecls deprecated;
  std::unordered_set<std::string> visited;
  collect_decls_recursive(text, fs::path(path).parent_path(), options, visited, decls,
                          deprecated);

  FileInfo info;
  info.path = path;
  info.is_header = is_header_path(path);
  info.emission = is_emission_file(path, lexed.tokens, options);
  info.timing_allowed = path_contains(path, options.timing_allowlist);
  info.is_test = is_test_path(path);
  info.obs_allowed = path_contains(path, options.obs_allowlist);
  info.mmap_allowed = path_contains(path, options.mmap_allowlist);
  info.wire_scope = path_contains(path, options.wire_paths);
  info.wire_allowed = path_contains(path, options.wire_allowlist);

  return filter_rules(run_rules(info, lexed, decls, deprecated), options);
}

std::vector<std::string> collect_sources(const std::vector<std::string>& roots) {
  std::vector<std::string> sources;
  std::error_code ec;
  for (const auto& root : roots) {
    if (fs::is_regular_file(root, ec)) {
      sources.push_back(root);
      continue;
    }
    for (fs::recursive_directory_iterator it(root, ec), end; it != end;
         it.increment(ec)) {
      if (ec) {
        break;
      }
      if (!it->is_regular_file(ec)) {
        continue;
      }
      const std::string ext = it->path().extension().string();
      if (ext == ".cpp" || ext == ".h") {
        sources.push_back(it->path().string());
      }
    }
  }
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  return sources;
}

std::vector<Finding> lint_model(const ProjectModel& model, const LintOptions& options,
                                AnalysisCache* cache) {
  const std::size_t file_count = model.files().size();

  // Symbol index, reusing cached per-file scans for byte-identical files.
  SymbolIndex index;
  if (cache != nullptr) {
    for (std::size_t f = 0; f < file_count; ++f) {
      const ProjectFile& file = model.files()[f];
      const std::uint64_t key = cache_hash(file.text);
      AnalysisCache::SymbolEntry entry;
      if (cache->lookup_symbols(key, entry)) {
        index.add_cached(entry.records, entry.deprecated, f, file.path);
        continue;
      }
      const std::size_t record_base = index.records().size();
      const std::size_t deprecated_base = index.deprecated().decls.size();
      index.add_file(file, f);
      entry.records.assign(index.records().begin() + record_base,
                           index.records().end());
      entry.deprecated.assign(index.deprecated().decls.begin() + deprecated_base,
                              index.deprecated().decls.end());
      cache->store_symbols(key, std::move(entry));
    }
  } else {
    index = SymbolIndex::build(model);
  }

  // Hash of the project-wide deprecated set: part of the per-file rule
  // cache key, since R-API1 resolves against it.
  std::uint64_t deprecated_hash = 1469598103934665603ULL;
  for (const auto& decl : index.deprecated().decls) {
    deprecated_hash = cache_hash(decl.name, deprecated_hash);
    deprecated_hash = cache_hash(std::to_string(decl.arity), deprecated_hash);
  }

  // Per-file pass, parallelized over util::parallel_for. Results land in
  // per-file slots and are concatenated in model order afterwards, so the
  // output is byte-identical at any thread count.
  std::vector<std::vector<Finding>> per_file(file_count);
  std::vector<UnorderedDecls> closure_decls(file_count);
  SuppressionUsage usage;
  usage.used.resize(file_count);
  for (std::size_t f = 0; f < file_count; ++f) {
    usage.used[f].assign(model.files()[f].lex.suppressions.size(), 0);
  }

  // Include closure of every file, in deterministic (index) order.
  // Precomputed serially: the DFS worklist would trip R-RACE2's own
  // captured-growth heuristic inside the parallel body, and the closures
  // double as cache-key inputs.
  std::vector<std::vector<std::size_t>> closures(file_count);
  for (std::size_t f = 0; f < file_count; ++f) {
    std::vector<char> seen(file_count, 0);
    std::vector<std::size_t> stack{f};
    seen[f] = 1;
    while (!stack.empty()) {
      const std::size_t at = stack.back();
      stack.pop_back();
      for (const auto& edge : model.files()[at].edges) {
        if (edge.target != ProjectModel::npos && seen[edge.target] == 0) {
          seen[edge.target] = 1;
          stack.push_back(edge.target);
        }
      }
    }
    for (std::size_t at = 0; at < file_count; ++at) {
      if (seen[at] != 0) {
        closures[f].push_back(at);
      }
    }
  }

  util::parallel_for(file_count, [&](std::size_t f) {
    const ProjectFile& file = model.files()[f];
    if (file.text.empty() && file.lex.tokens.empty()) {
      return;  // unreadable (build() records it empty) or genuinely empty
    }
    const std::vector<std::size_t>& closure = closures[f];

    // Unordered-container declarations come from the file plus everything
    // it reaches through the include graph. Two passes: the first registers
    // every alias regardless of which closure member declares it, the
    // second resolves alias-typed declarations against the full alias set —
    // one pass would miss a variable whose alias lives in a header scanned
    // later (collection is idempotent, so rescanning is safe).
    UnorderedDecls& decls = closure_decls[f];
    for (int pass = 0; pass < 2; ++pass) {
      for (const std::size_t at : closure) {
        collect_unordered_decls(model.files()[at].lex.tokens, decls);
      }
    }

    FileInfo info;
    info.path = file.path;
    info.is_header = file.is_header;
    info.emission = is_emission_file(file.path, file.lex.tokens, options);
    info.timing_allowed = path_contains(file.path, options.timing_allowlist);
    info.is_test = is_test_path(file.path);
    info.obs_allowed = path_contains(file.path, options.obs_allowlist);
    info.mmap_allowed = path_contains(file.path, options.mmap_allowlist);
    info.wire_scope = path_contains(file.path, options.wire_paths);
    info.wire_allowed = path_contains(file.path, options.wire_allowlist);
    info.whole_program = true;  // R-DET3 supersedes file-local R-DET2

    std::uint64_t rule_key = 0;
    if (cache != nullptr) {
      rule_key = cache_hash(file.path);
      for (const std::size_t at : closure) {
        rule_key = cache_hash(model.files()[at].text, rule_key);
      }
      rule_key ^= deprecated_hash;
      AnalysisCache::RuleEntry entry;
      if (cache->lookup_rules(rule_key, entry) &&
          entry.suppression_used.size() == usage.used[f].size()) {
        per_file[f] = std::move(entry.findings);
        usage.used[f] = std::move(entry.suppression_used);
        return;
      }
    }

    // R-API1 resolves against the project-wide deprecated set, so calls
    // through headers this file never includes are still caught.
    per_file[f] = run_rules(info, file.lex, decls, index.deprecated(),
                            &usage.used[f]);
    if (cache != nullptr) {
      cache->store_rules(rule_key,
                         AnalysisCache::RuleEntry{per_file[f], usage.used[f]});
    }
  });

  std::vector<Finding> findings;
  for (auto& slot : per_file) {
    findings.insert(findings.end(), std::make_move_iterator(slot.begin()),
                    std::make_move_iterator(slot.end()));
  }

  auto arch = check_layering(model, &usage);
  findings.insert(findings.end(), std::make_move_iterator(arch.begin()),
                  std::make_move_iterator(arch.end()));
  auto cycles = check_include_cycles(model);
  findings.insert(findings.end(), std::make_move_iterator(cycles.begin()),
                  std::make_move_iterator(cycles.end()));
  auto odr = check_odr(index, model, &usage);
  findings.insert(findings.end(), std::make_move_iterator(odr.begin()),
                  std::make_move_iterator(odr.end()));

  // Interprocedural passes (seg-lint v3): call graph, then R-DET3 taint
  // tracking and R-EXC1 thread-exception routing. Finding anchors in test
  // code are dropped — fixtures exercise the patterns on purpose — and
  // per-file suppressions apply at the anchor.
  const CallGraph graph = CallGraph::build(index, model);
  const DataflowResult flow = run_dataflow(index, graph, model, closure_decls);
  std::vector<Finding> interproc = flow.det3;
  auto exc = check_thread_exceptions(index, graph, model, flow);
  interproc.insert(interproc.end(), std::make_move_iterator(exc.begin()),
                   std::make_move_iterator(exc.end()));
  for (auto& finding : interproc) {
    if (is_test_path(finding.file)) {
      continue;
    }
    const std::size_t file_index = model.index_of(finding.file);
    if (file_index != ProjectModel::npos) {
      std::vector<Finding> one;
      one.push_back(std::move(finding));
      one = apply_suppressions(std::move(one),
                               model.files()[file_index].lex.suppressions,
                               &usage.used[file_index]);
      if (!one.empty()) {
        findings.push_back(std::move(one.front()));
      }
    } else {
      findings.push_back(std::move(finding));
    }
  }

  // R-SUP1: a directive no pass used is stale — it either outlived the code
  // it excused or names the wrong rule. Not itself suppressible.
  for (std::size_t f = 0; f < file_count; ++f) {
    const ProjectFile& file = model.files()[f];
    if (path_contains(file.path, options.sup_exempt_paths)) {
      continue;
    }
    for (std::size_t s = 0; s < file.lex.suppressions.size(); ++s) {
      if (usage.used[f][s] != 0) {
        continue;
      }
      const Suppression& sup = file.lex.suppressions[s];
      findings.push_back(Finding{
          file.path, sup.line, "R-SUP1",
          "stale suppression: '" + std::string(sup.whole_file ? "allow-file" : "allow") +
              "(" + sup.rule + ")' matched no finding — delete the directive "
              "or fix the rule name"});
    }
  }

  findings = filter_rules(std::move(findings), options);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return findings;
}

std::vector<Finding> lint_project(const std::vector<std::string>& sources,
                                  const LintOptions& options, AnalysisCache* cache) {
  LayersConfig layers;
  if (!options.layers_file.empty()) {
    std::string toml;
    if (!read_file(options.layers_file, toml)) {
      return {Finding{options.layers_file, 0, "CONFIG", "cannot read layers file"}};
    }
    try {
      layers = parse_layers(toml);
    } catch (const std::runtime_error& error) {
      return {Finding{options.layers_file, 0, "CONFIG", error.what()}};
    }
  }

  const ProjectModel model = ProjectModel::build(sources, options, layers);
  return lint_model(model, options, cache);
}

}  // namespace seg::lint
