#include "util/lint/linter.h"

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "util/lint/project_model.h"
#include "util/lint/symbol_index.h"

namespace seg::lint {

namespace fs = std::filesystem;

namespace {

bool path_contains(std::string_view path, const std::vector<std::string>& needles) {
  return std::any_of(needles.begin(), needles.end(), [&](const std::string& needle) {
    return path.find(needle) != std::string_view::npos;
  });
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

// Resolves a quoted include against the including file's directory and the
// configured include roots. Returns an empty path when not found.
fs::path resolve_include(const std::string& target, const fs::path& including_dir,
                         const LintOptions& options) {
  std::error_code ec;
  const fs::path sibling = including_dir / target;
  if (fs::is_regular_file(sibling, ec)) {
    return sibling;
  }
  for (const auto& root : options.include_roots) {
    const fs::path candidate = fs::path(root) / target;
    if (fs::is_regular_file(candidate, ec)) {
      return candidate;
    }
    // Includes are typically rooted at src/ ("graph/graph.h"); also try the
    // root's parent so passing `src/graph` as a root still resolves them.
    const fs::path from_parent = fs::path(root).parent_path() / target;
    if (fs::is_regular_file(from_parent, ec)) {
      return from_parent;
    }
  }
  return {};
}

// Collects unordered-container and seg-deprecated declarations from
// `source` and, recursively, from every reachable quoted include (project
// headers only).
void collect_decls_recursive(const std::string& source, const fs::path& dir,
                             const LintOptions& options,
                             std::unordered_set<std::string>& visited,
                             UnorderedDecls& decls, DeprecatedDecls& deprecated) {
  const LexResult lexed = lex(source);
  collect_unordered_decls(lexed.tokens, decls);
  collect_deprecated_decls(lexed, deprecated);
  for (const auto& directive : lexed.includes) {
    if (!directive.quoted) {
      continue;
    }
    const fs::path resolved = resolve_include(directive.target, dir, options);
    if (resolved.empty()) {
      continue;
    }
    std::error_code ec;
    const fs::path canonical = fs::weakly_canonical(resolved, ec);
    const std::string key = (ec ? resolved : canonical).string();
    if (!visited.insert(key).second) {
      continue;
    }
    std::string text;
    if (read_file(resolved, text)) {
      collect_decls_recursive(text, resolved.parent_path(), options, visited, decls,
                              deprecated);
    }
  }
}

bool is_header_path(std::string_view path) {
  return path.size() >= 2 && path.substr(path.size() - 2) == ".h";
}

bool is_test_path(std::string_view path) {
  if (path.find("tests/") != std::string_view::npos) {
    return true;
  }
  constexpr std::string_view kSuffix = "_test.cpp";
  return path.size() >= kSuffix.size() &&
         path.substr(path.size() - kSuffix.size()) == kSuffix;
}

std::vector<Finding> filter_rules(std::vector<Finding> findings,
                                  const LintOptions& options) {
  if (options.only_rules.empty()) {
    return findings;
  }
  std::vector<Finding> kept;
  for (auto& finding : findings) {
    if (std::find(options.only_rules.begin(), options.only_rules.end(),
                  finding.rule) != options.only_rules.end()) {
      kept.push_back(std::move(finding));
    }
  }
  return kept;
}

}  // namespace

bool is_emission_file(std::string_view path, const std::vector<Token>& tokens,
                      const LintOptions& options) {
  if (path_contains(path, options.emission_paths)) {
    return true;
  }
  static constexpr std::array<std::string_view, 12> kOutputTokens = {
      "ostream", "ofstream", "fstream",  "ostringstream", "iostream", "printf",
      "fprintf", "fputs",    "fwrite",   "cout",          "cerr",     "to_csv",
  };
  return std::any_of(tokens.begin(), tokens.end(), [](const Token& tok) {
    return tok.kind == TokKind::kIdentifier &&
           std::find(kOutputTokens.begin(), kOutputTokens.end(), tok.text) !=
               kOutputTokens.end();
  });
}

std::vector<Finding> lint_text(std::string_view path, std::string_view text,
                               const LintOptions& options,
                               std::string_view extra_header_text) {
  const LexResult lexed = lex(text);

  UnorderedDecls decls;
  DeprecatedDecls deprecated;
  if (!extra_header_text.empty()) {
    const LexResult header = lex(extra_header_text);
    collect_unordered_decls(header.tokens, decls);
    collect_deprecated_decls(header, deprecated);
  }
  collect_unordered_decls(lexed.tokens, decls);
  collect_deprecated_decls(lexed, deprecated);

  FileInfo info;
  info.path = std::string(path);
  info.is_header = is_header_path(path);
  info.emission = is_emission_file(path, lexed.tokens, options);
  info.timing_allowed = path_contains(path, options.timing_allowlist);
  info.is_test = is_test_path(path);
  info.obs_allowed = path_contains(path, options.obs_allowlist);
  info.mmap_allowed = path_contains(path, options.mmap_allowlist);

  return filter_rules(run_rules(info, lexed, decls, deprecated), options);
}

std::vector<Finding> lint_file(const std::string& path, const LintOptions& options) {
  std::string text;
  if (!read_file(path, text)) {
    return {Finding{path, 0, "IO", "cannot read file"}};
  }
  const LexResult lexed = lex(text);

  UnorderedDecls decls;
  DeprecatedDecls deprecated;
  std::unordered_set<std::string> visited;
  collect_decls_recursive(text, fs::path(path).parent_path(), options, visited, decls,
                          deprecated);

  FileInfo info;
  info.path = path;
  info.is_header = is_header_path(path);
  info.emission = is_emission_file(path, lexed.tokens, options);
  info.timing_allowed = path_contains(path, options.timing_allowlist);
  info.is_test = is_test_path(path);
  info.obs_allowed = path_contains(path, options.obs_allowlist);
  info.mmap_allowed = path_contains(path, options.mmap_allowlist);

  return filter_rules(run_rules(info, lexed, decls, deprecated), options);
}

std::vector<std::string> collect_sources(const std::vector<std::string>& roots) {
  std::vector<std::string> sources;
  std::error_code ec;
  for (const auto& root : roots) {
    if (fs::is_regular_file(root, ec)) {
      sources.push_back(root);
      continue;
    }
    for (fs::recursive_directory_iterator it(root, ec), end; it != end;
         it.increment(ec)) {
      if (ec) {
        break;
      }
      if (!it->is_regular_file(ec)) {
        continue;
      }
      const std::string ext = it->path().extension().string();
      if (ext == ".cpp" || ext == ".h") {
        sources.push_back(it->path().string());
      }
    }
  }
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  return sources;
}

std::vector<Finding> lint_project(const std::vector<std::string>& sources,
                                  const LintOptions& options) {
  LayersConfig layers;
  if (!options.layers_file.empty()) {
    std::string toml;
    if (!read_file(options.layers_file, toml)) {
      return {Finding{options.layers_file, 0, "CONFIG", "cannot read layers file"}};
    }
    try {
      layers = parse_layers(toml);
    } catch (const std::runtime_error& error) {
      return {Finding{options.layers_file, 0, "CONFIG", error.what()}};
    }
  }

  const ProjectModel model = ProjectModel::build(sources, options, layers);
  const SymbolIndex index = SymbolIndex::build(model);

  std::vector<Finding> findings;
  for (std::size_t f = 0; f < model.files().size(); ++f) {
    const ProjectFile& file = model.files()[f];
    if (file.text.empty() && file.lex.tokens.empty()) {
      continue;  // unreadable (build() records it empty) or genuinely empty
    }

    // Unordered-container declarations come from the file plus everything it
    // reaches through the include graph — same scope the one-file driver
    // gets from collect_decls_recursive, but with each header lexed once.
    UnorderedDecls decls;
    std::vector<char> seen(model.files().size(), 0);
    std::vector<std::size_t> stack{f};
    seen[f] = 1;
    while (!stack.empty()) {
      const std::size_t at = stack.back();
      stack.pop_back();
      collect_unordered_decls(model.files()[at].lex.tokens, decls);
      for (const auto& edge : model.files()[at].edges) {
        if (edge.target != ProjectModel::npos && seen[edge.target] == 0) {
          seen[edge.target] = 1;
          stack.push_back(edge.target);
        }
      }
    }

    FileInfo info;
    info.path = file.path;
    info.is_header = file.is_header;
    info.emission = is_emission_file(file.path, file.lex.tokens, options);
    info.timing_allowed = path_contains(file.path, options.timing_allowlist);
    info.is_test = is_test_path(file.path);
    info.obs_allowed = path_contains(file.path, options.obs_allowlist);
    info.mmap_allowed = path_contains(file.path, options.mmap_allowlist);

    // R-API1 resolves against the project-wide deprecated set, so calls
    // through headers this file never includes are still caught.
    auto file_findings = run_rules(info, file.lex, decls, index.deprecated());
    findings.insert(findings.end(), std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }

  auto arch = check_layering(model);
  findings.insert(findings.end(), std::make_move_iterator(arch.begin()),
                  std::make_move_iterator(arch.end()));
  auto cycles = check_include_cycles(model);
  findings.insert(findings.end(), std::make_move_iterator(cycles.begin()),
                  std::make_move_iterator(cycles.end()));
  auto odr = check_odr(index, model);
  findings.insert(findings.end(), std::make_move_iterator(odr.begin()),
                  std::make_move_iterator(odr.end()));

  findings = filter_rules(std::move(findings), options);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return findings;
}

}  // namespace seg::lint
