#include "util/lint/linter.h"

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_set>

namespace seg::lint {

namespace fs = std::filesystem;

namespace {

bool path_contains(std::string_view path, const std::vector<std::string>& needles) {
  return std::any_of(needles.begin(), needles.end(), [&](const std::string& needle) {
    return path.find(needle) != std::string_view::npos;
  });
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

// Quoted #include targets of `source`, in order of appearance.
std::vector<std::string> quoted_includes(std::string_view source) {
  std::vector<std::string> includes;
  std::size_t pos = 0;
  while ((pos = source.find("#include", pos)) != std::string_view::npos) {
    pos += 8;
    while (pos < source.size() && (source[pos] == ' ' || source[pos] == '\t')) {
      ++pos;
    }
    if (pos < source.size() && source[pos] == '"') {
      const std::size_t close = source.find('"', pos + 1);
      if (close != std::string_view::npos) {
        includes.emplace_back(source.substr(pos + 1, close - pos - 1));
        pos = close + 1;
      }
    }
  }
  return includes;
}

// Resolves a quoted include against the including file's directory and the
// configured include roots. Returns an empty path when not found.
fs::path resolve_include(const std::string& target, const fs::path& including_dir,
                         const LintOptions& options) {
  std::error_code ec;
  const fs::path sibling = including_dir / target;
  if (fs::is_regular_file(sibling, ec)) {
    return sibling;
  }
  for (const auto& root : options.include_roots) {
    const fs::path candidate = fs::path(root) / target;
    if (fs::is_regular_file(candidate, ec)) {
      return candidate;
    }
    // Includes are typically rooted at src/ ("graph/graph.h"); also try the
    // root's parent so passing `src/graph` as a root still resolves them.
    const fs::path from_parent = fs::path(root).parent_path() / target;
    if (fs::is_regular_file(from_parent, ec)) {
      return from_parent;
    }
  }
  return {};
}

// Collects unordered-container and seg-deprecated declarations from
// `source` and, recursively, from every reachable quoted include (project
// headers only).
void collect_decls_recursive(const std::string& source, const fs::path& dir,
                             const LintOptions& options,
                             std::unordered_set<std::string>& visited,
                             UnorderedDecls& decls, DeprecatedDecls& deprecated) {
  const LexResult lexed = lex(source);
  collect_unordered_decls(lexed.tokens, decls);
  collect_deprecated_decls(lexed, deprecated);
  for (const auto& target : quoted_includes(source)) {
    const fs::path resolved = resolve_include(target, dir, options);
    if (resolved.empty()) {
      continue;
    }
    std::error_code ec;
    const fs::path canonical = fs::weakly_canonical(resolved, ec);
    const std::string key = (ec ? resolved : canonical).string();
    if (!visited.insert(key).second) {
      continue;
    }
    std::string text;
    if (read_file(resolved, text)) {
      collect_decls_recursive(text, resolved.parent_path(), options, visited, decls,
                              deprecated);
    }
  }
}

bool is_header_path(std::string_view path) {
  return path.size() >= 2 && path.substr(path.size() - 2) == ".h";
}

std::vector<Finding> filter_rules(std::vector<Finding> findings,
                                  const LintOptions& options) {
  if (options.only_rules.empty()) {
    return findings;
  }
  std::vector<Finding> kept;
  for (auto& finding : findings) {
    if (std::find(options.only_rules.begin(), options.only_rules.end(),
                  finding.rule) != options.only_rules.end()) {
      kept.push_back(std::move(finding));
    }
  }
  return kept;
}

}  // namespace

bool is_emission_file(std::string_view path, const std::vector<Token>& tokens,
                      const LintOptions& options) {
  if (path_contains(path, options.emission_paths)) {
    return true;
  }
  static constexpr std::array<std::string_view, 12> kOutputTokens = {
      "ostream", "ofstream", "fstream",  "ostringstream", "iostream", "printf",
      "fprintf", "fputs",    "fwrite",   "cout",          "cerr",     "to_csv",
  };
  return std::any_of(tokens.begin(), tokens.end(), [](const Token& tok) {
    return tok.kind == TokKind::kIdentifier &&
           std::find(kOutputTokens.begin(), kOutputTokens.end(), tok.text) !=
               kOutputTokens.end();
  });
}

std::vector<Finding> lint_text(std::string_view path, std::string_view text,
                               const LintOptions& options,
                               std::string_view extra_header_text) {
  const LexResult lexed = lex(text);

  UnorderedDecls decls;
  DeprecatedDecls deprecated;
  if (!extra_header_text.empty()) {
    const LexResult header = lex(extra_header_text);
    collect_unordered_decls(header.tokens, decls);
    collect_deprecated_decls(header, deprecated);
  }
  collect_unordered_decls(lexed.tokens, decls);
  collect_deprecated_decls(lexed, deprecated);

  FileInfo info;
  info.path = std::string(path);
  info.is_header = is_header_path(path);
  info.emission = is_emission_file(path, lexed.tokens, options);
  info.timing_allowed = path_contains(path, options.timing_allowlist);

  return filter_rules(run_rules(info, lexed, decls, deprecated), options);
}

std::vector<Finding> lint_file(const std::string& path, const LintOptions& options) {
  std::string text;
  if (!read_file(path, text)) {
    return {Finding{path, 0, "IO", "cannot read file"}};
  }
  const LexResult lexed = lex(text);

  UnorderedDecls decls;
  DeprecatedDecls deprecated;
  std::unordered_set<std::string> visited;
  collect_decls_recursive(text, fs::path(path).parent_path(), options, visited, decls,
                          deprecated);

  FileInfo info;
  info.path = path;
  info.is_header = is_header_path(path);
  info.emission = is_emission_file(path, lexed.tokens, options);
  info.timing_allowed = path_contains(path, options.timing_allowlist);

  return filter_rules(run_rules(info, lexed, decls, deprecated), options);
}

std::vector<std::string> collect_sources(const std::vector<std::string>& roots) {
  std::vector<std::string> sources;
  std::error_code ec;
  for (const auto& root : roots) {
    if (fs::is_regular_file(root, ec)) {
      sources.push_back(root);
      continue;
    }
    for (fs::recursive_directory_iterator it(root, ec), end; it != end;
         it.increment(ec)) {
      if (ec) {
        break;
      }
      if (!it->is_regular_file(ec)) {
        continue;
      }
      const std::string ext = it->path().extension().string();
      if (ext == ".cpp" || ext == ".h") {
        sources.push_back(it->path().string());
      }
    }
  }
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  return sources;
}

}  // namespace seg::lint
