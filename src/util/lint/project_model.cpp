#include "util/lint/project_model.h"

#include "util/lint/report.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <queue>
#include <sstream>
#include <stdexcept>

namespace seg::lint {

namespace fs = std::filesystem;

namespace {

std::string trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return std::string(s);
}

[[noreturn]] void layers_error(std::size_t line, const std::string& what) {
  throw std::runtime_error("layers.toml:" + std::to_string(line) + ": " + what);
}

// Parses `"..."` starting at the first character of `s`.
std::string parse_toml_string(std::string_view s, std::size_t line) {
  if (s.size() < 2 || s.front() != '"' || s.find('"', 1) != s.size() - 1) {
    layers_error(line, "expected a double-quoted string, got '" + std::string(s) + "'");
  }
  return std::string(s.substr(1, s.size() - 2));
}

std::vector<std::string> parse_toml_array(std::string_view s, std::size_t line) {
  if (s.size() < 2 || s.front() != '[' || s.back() != ']') {
    layers_error(line, "expected an inline array, got '" + std::string(s) + "'");
  }
  std::vector<std::string> out;
  std::string_view body = s.substr(1, s.size() - 2);
  while (true) {
    const std::size_t comma = body.find(',');
    const std::string item = trim(body.substr(0, comma));
    if (!item.empty()) {
      out.push_back(parse_toml_string(item, line));
    }
    if (comma == std::string_view::npos) {
      break;
    }
    body.remove_prefix(comma + 1);
  }
  return out;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool is_cpp_path(std::string_view path) { return ends_with(path, ".cpp"); }

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace

// --- layers.toml ------------------------------------------------------------

LayersConfig parse_layers(std::string_view toml_text) {
  LayersConfig config;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= toml_text.size()) {
    const std::size_t eol = toml_text.find('\n', pos);
    const std::string line =
        trim(toml_text.substr(pos, eol == std::string_view::npos ? eol : eol - pos));
    pos = eol == std::string_view::npos ? toml_text.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty() || line.front() == '#') {
      continue;
    }
    if (line == "[[layer]]") {
      config.layers.emplace_back();
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      layers_error(line_no, "expected `key = value` or [[layer]]");
    }
    if (config.layers.empty()) {
      layers_error(line_no, "key outside any [[layer]] table");
    }
    const std::string key = trim(std::string_view(line).substr(0, eq));
    // Strip a trailing comment outside the value's quotes: values here are
    // simple enough that a '#' after the closing quote/bracket ends the line.
    std::string value = trim(std::string_view(line).substr(eq + 1));
    const char closer = value.empty() ? '\0' : (value.front() == '[' ? ']' : '"');
    const std::size_t close = value.rfind(closer);
    if (const std::size_t hash = value.find('#', close == std::string::npos ? 0 : close);
        hash != std::string::npos && hash > 0) {
      value = trim(std::string_view(value).substr(0, hash));
    }
    auto& layer = config.layers.back();
    if (key == "name") {
      layer.name = parse_toml_string(value, line_no);
    } else if (key == "paths") {
      layer.paths = parse_toml_array(value, line_no);
    } else if (key == "allow") {
      layer.allow = parse_toml_array(value, line_no);
    } else {
      layers_error(line_no, "unknown key '" + key + "'");
    }
  }
  for (std::size_t i = 0; i < config.layers.size(); ++i) {
    const auto& layer = config.layers[i];
    if (layer.name.empty()) {
      layers_error(0, "layer " + std::to_string(i) + " has no name");
    }
    for (const auto& allowed : layer.allow) {
      if (allowed == "*") {
        continue;
      }
      const bool known = std::any_of(
          config.layers.begin(), config.layers.end(),
          [&](const LayerSpec& other) { return other.name == allowed; });
      if (!known) {
        layers_error(0, "layer '" + layer.name + "' allows unknown layer '" + allowed + "'");
      }
    }
  }
  return config;
}

std::size_t LayersConfig::layer_of(std::string_view path) const {
  std::size_t best = npos;
  std::size_t best_len = 0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    for (const auto& needle : layers[i].paths) {
      if (needle.size() >= best_len && path.find(needle) != std::string_view::npos) {
        best = i;
        best_len = needle.size();
      }
    }
  }
  return best;
}

bool LayersConfig::allowed(std::size_t from, std::size_t to) const {
  if (from == npos || to == npos || from == to) {
    return true;  // unlayered files and same-layer includes are unconstrained
  }
  const auto& allow = layers[from].allow;
  return std::any_of(allow.begin(), allow.end(), [&](const std::string& name) {
    return name == "*" || name == layers[to].name;
  });
}

// --- model construction ------------------------------------------------------

ProjectModel ProjectModel::build(const std::vector<std::string>& sources,
                                 const LintOptions& options, const LayersConfig& layers) {
  ProjectModel model;
  model.layers_ = layers;

  // Canonical on-disk path -> file index, for include resolution.
  std::map<std::string, std::size_t> by_canonical;
  for (const auto& source : sources) {
    std::string text;
    if (!read_file(source, text)) {
      continue;
    }
    ProjectFile file;
    file.path = normalize_path(source);
    file.disk_path = source;
    file.text = std::move(text);
    model.files_.push_back(std::move(file));
  }
  std::sort(model.files_.begin(), model.files_.end(),
            [](const ProjectFile& a, const ProjectFile& b) { return a.path < b.path; });
  for (std::size_t i = 0; i < model.files_.size(); ++i) {
    auto& file = model.files_[i];
    file.lex = lex(file.text);
    file.is_header = ends_with(file.path, ".h");
    std::error_code ec;
    const fs::path canonical = fs::weakly_canonical(file.disk_path, ec);
    by_canonical.emplace((ec ? fs::path(file.disk_path) : canonical).string(), i);
  }

  for (auto& file : model.files_) {
    const fs::path dir = fs::path(file.disk_path).parent_path();
    for (const auto& directive : file.lex.includes) {
      if (!directive.quoted) {
        continue;
      }
      ProjectFile::Edge edge;
      edge.raw_target = directive.target;
      edge.line = directive.line;
      std::error_code ec;
      std::vector<fs::path> candidates;
      candidates.push_back(dir / directive.target);
      for (const auto& root : options.include_roots) {
        candidates.push_back(fs::path(root) / directive.target);
        candidates.push_back(fs::path(root).parent_path() / directive.target);
      }
      for (const auto& candidate : candidates) {
        const fs::path canonical = fs::weakly_canonical(candidate, ec);
        const auto it = by_canonical.find((ec ? candidate : canonical).string());
        if (it != by_canonical.end()) {
          edge.target = it->second;
          break;
        }
      }
      file.edges.push_back(std::move(edge));
    }
  }
  model.assign_layers();
  return model;
}

ProjectModel ProjectModel::from_memory(
    const std::vector<std::pair<std::string, std::string>>& files,
    const LayersConfig& layers) {
  ProjectModel model;
  model.layers_ = layers;
  for (const auto& [path, text] : files) {
    ProjectFile file;
    file.path = path;
    file.disk_path = path;
    file.text = text;
    model.files_.push_back(std::move(file));
  }
  std::sort(model.files_.begin(), model.files_.end(),
            [](const ProjectFile& a, const ProjectFile& b) { return a.path < b.path; });
  for (auto& file : model.files_) {
    file.lex = lex(file.text);
    file.is_header = ends_with(file.path, ".h");
  }
  for (auto& file : model.files_) {
    for (const auto& directive : file.lex.includes) {
      if (!directive.quoted) {
        continue;
      }
      ProjectFile::Edge edge;
      edge.raw_target = directive.target;
      edge.line = directive.line;
      edge.target = model.index_of(directive.target);
      file.edges.push_back(std::move(edge));
    }
  }
  model.assign_layers();
  return model;
}

void ProjectModel::assign_layers() {
  for (auto& file : files_) {
    file.layer = layers_.layer_of(file.path);
  }
}

std::size_t ProjectModel::index_of(std::string_view path) const {
  for (std::size_t i = 0; i < files_.size(); ++i) {
    if (files_[i].path == path || ends_with(files_[i].path, "/" + std::string(path))) {
      return i;
    }
  }
  return npos;
}

std::vector<std::size_t> ProjectModel::chain_to(std::size_t file) const {
  // BFS over reverse include edges from `file` toward the nearest .cpp
  // translation unit; ties break toward the lowest file index, which is
  // lexicographic path order.
  std::vector<std::vector<std::size_t>> reverse(files_.size());
  for (std::size_t i = 0; i < files_.size(); ++i) {
    for (const auto& edge : files_[i].edges) {
      if (edge.target != npos) {
        reverse[edge.target].push_back(i);
      }
    }
  }
  std::vector<std::size_t> parent(files_.size(), npos);
  std::vector<char> seen(files_.size(), 0);
  std::queue<std::size_t> frontier;
  frontier.push(file);
  seen[file] = 1;
  while (!frontier.empty()) {
    const std::size_t at = frontier.front();
    frontier.pop();
    if (is_cpp_path(files_[at].path)) {
      std::vector<std::size_t> chain;
      for (std::size_t hop = at; hop != npos; hop = parent[hop]) {
        chain.push_back(hop);
      }
      return chain;  // .cpp first, `file` last
    }
    auto& preds = reverse[at];
    std::sort(preds.begin(), preds.end());
    for (const std::size_t pred : preds) {
      if (seen[pred] == 0) {
        seen[pred] = 1;
        parent[pred] = at;
        frontier.push(pred);
      }
    }
  }
  return {file};
}

// --- R-ARCH1 ----------------------------------------------------------------

std::vector<Finding> check_layering(const ProjectModel& model,
                                    SuppressionUsage* usage) {
  std::vector<Finding> all;
  const auto& layers = model.layers();
  for (std::size_t i = 0; i < model.files().size(); ++i) {
    const auto& file = model.files()[i];
    std::vector<Finding> per_file;
    for (const auto& edge : file.edges) {
      if (edge.target == ProjectModel::npos) {
        continue;
      }
      const auto& target = model.files()[edge.target];
      if (layers.allowed(file.layer, target.layer)) {
        continue;
      }
      std::string allowed_names;
      for (const auto& name : layers.layers[file.layer].allow) {
        allowed_names += allowed_names.empty() ? name : ", " + name;
      }
      std::string chain;
      for (const std::size_t hop : model.chain_to(i)) {
        chain += (chain.empty() ? "" : " -> ") + model.files()[hop].path;
      }
      chain += " -> " + target.path;
      per_file.push_back(Finding{
          file.path, edge.line, "R-ARCH1",
          "layering violation: '" + layers.layers[file.layer].name +
              "' code includes \"" + edge.raw_target + "\" from layer '" +
              layers.layers[target.layer].name + "' (allowed: " +
              (allowed_names.empty() ? "none" : allowed_names) +
              "); include chain: " + chain});
    }
    per_file = apply_suppressions(std::move(per_file), file.lex.suppressions,
                                  usage ? &usage->used[i] : nullptr);
    all.insert(all.end(), std::make_move_iterator(per_file.begin()),
               std::make_move_iterator(per_file.end()));
  }
  return all;
}

// --- R-ARCH2 ----------------------------------------------------------------

namespace {

// Iterative Tarjan SCC over the quoted-include graph.
struct Tarjan {
  const ProjectModel& model;
  std::vector<std::size_t> index, lowlink;
  std::vector<char> on_stack;
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> sccs;
  std::size_t next_index = 0;

  explicit Tarjan(const ProjectModel& m)
      : model(m),
        index(m.files().size(), ProjectModel::npos),
        lowlink(m.files().size(), 0),
        on_stack(m.files().size(), 0) {}

  void run(std::size_t root) {
    struct Frame {
      std::size_t node;
      std::size_t edge = 0;
    };
    std::vector<Frame> frames{{root}};
    while (!frames.empty()) {
      auto& frame = frames.back();
      const std::size_t v = frame.node;
      if (frame.edge == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = 1;
      }
      bool descended = false;
      const auto& edges = model.files()[v].edges;
      while (frame.edge < edges.size()) {
        const std::size_t w = edges[frame.edge].target;
        ++frame.edge;
        if (w == ProjectModel::npos) {
          continue;
        }
        if (index[w] == ProjectModel::npos) {
          frames.push_back(Frame{w});
          descended = true;
          break;
        }
        if (on_stack[w] != 0) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      }
      if (descended) {
        continue;
      }
      if (lowlink[v] == index[v]) {
        std::vector<std::size_t> scc;
        while (true) {
          const std::size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          scc.push_back(w);
          if (w == v) {
            break;
          }
        }
        std::sort(scc.begin(), scc.end());
        sccs.push_back(std::move(scc));
      }
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().node] = std::min(lowlink[frames.back().node], lowlink[v]);
      }
    }
  }
};

// Shortest path from `from` back to `from` through the include edges that
// stay inside `members` (which is sorted).
std::vector<std::size_t> cycle_path(const ProjectModel& model,
                                    const std::vector<std::size_t>& members,
                                    std::size_t from) {
  const auto in_scc = [&](std::size_t node) {
    return std::binary_search(members.begin(), members.end(), node);
  };
  std::vector<std::size_t> parent(model.files().size(), ProjectModel::npos);
  std::vector<char> seen(model.files().size(), 0);
  std::queue<std::size_t> frontier;
  frontier.push(from);
  while (!frontier.empty()) {
    const std::size_t at = frontier.front();
    frontier.pop();
    for (const auto& edge : model.files()[at].edges) {
      const std::size_t w = edge.target;
      if (w == ProjectModel::npos || !in_scc(w)) {
        continue;
      }
      if (w == from) {
        std::vector<std::size_t> path;
        for (std::size_t hop = at; hop != ProjectModel::npos; hop = parent[hop]) {
          path.push_back(hop);
        }
        std::reverse(path.begin(), path.end());
        path.insert(path.begin(), from);
        path.push_back(from);
        // `from` may appear twice at the front when the first hop closed
        // the loop immediately (self-include).
        if (path.size() >= 2 && path[0] == path[1]) {
          path.erase(path.begin());
        }
        return path;
      }
      if (seen[w] == 0) {
        seen[w] = 1;
        parent[w] = at;
        frontier.push(w);
      }
    }
  }
  return {from, from};
}

}  // namespace

std::vector<Finding> check_include_cycles(const ProjectModel& model) {
  Tarjan tarjan(model);
  for (std::size_t i = 0; i < model.files().size(); ++i) {
    if (tarjan.index[i] == ProjectModel::npos) {
      tarjan.run(i);
    }
  }
  std::vector<Finding> findings;
  for (auto& scc : tarjan.sccs) {
    bool cyclic = scc.size() > 1;
    if (!cyclic) {
      for (const auto& edge : model.files()[scc[0]].edges) {
        cyclic |= edge.target == scc[0];  // self-include
      }
    }
    if (!cyclic) {
      continue;
    }
    const std::size_t head = scc[0];
    const auto path = cycle_path(model, scc, head);
    std::string display;
    for (const std::size_t hop : path) {
      display += (display.empty() ? "" : " -> ") + model.files()[hop].path;
    }
    std::size_t line = 1;
    for (const auto& edge : model.files()[head].edges) {
      if (path.size() >= 2 && edge.target == path[1]) {
        line = edge.line;
        break;
      }
    }
    findings.push_back(Finding{model.files()[head].path, line, "R-ARCH2",
                               "include cycle: " + display});
  }
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return a.file != b.file ? a.file < b.file : a.line < b.line;
  });
  return findings;
}

}  // namespace seg::lint
