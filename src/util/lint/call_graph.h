// Whole-program call graph for seg-lint v3.
//
// Nodes are the function *definitions* from the symbol index (records with
// bodies); edges are resolved call sites found by re-walking each body's
// token range. Resolution is deliberately conservative, in the style of the
// rest of the checker (no real name lookup, no overload resolution):
//
//   - a call `name(args...)` links to every indexed definition whose last
//     name component matches and whose declared arity matches the argument
//     count; when no arity matches (default arguments, variadics), it
//     links to every same-name definition instead;
//   - member calls (`obj.method(...)`) resolve by method name the same
//     way, which over-approximates virtual dispatch: all overriders with a
//     matching shape become callees;
//   - ALL_CAPS macro-shaped names and control-flow keywords are skipped.
//
// Over-approximation is the right failure mode here: the dataflow pass on
// top (dataflow.h) uses the graph to propagate "may taint" facts, where a
// spurious edge can at worst widen a fact, never hide one.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "util/lint/symbol_index.h"

namespace seg::lint {

class CallGraph {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Builds the graph over every definition in `index`. `model` supplies
  /// the token streams the records' body ranges point into. Deterministic:
  /// records are visited in index order, callee lists keep record order.
  static CallGraph build(const SymbolIndex& index, const ProjectModel& model);

  /// Callee record indices per symbol record (empty for records without
  /// bodies). Parallel to `index.records()`.
  const std::vector<std::vector<std::size_t>>& callees() const { return callees_; }

  /// All definition records whose last name component is `name` and whose
  /// arity matches; falls back to every same-name definition when no arity
  /// matches. Sorted ascending.
  std::vector<std::size_t> resolve(std::string_view name, std::size_t arity) const;

 private:
  const SymbolIndex* index_ = nullptr;
  std::vector<std::vector<std::size_t>> callees_;
  /// Sorted (name, record) pairs over definitions, for binary-search
  /// resolution without hash-map iteration anywhere near report order.
  std::vector<std::pair<std::string_view, std::size_t>> by_name_;
};

}  // namespace seg::lint
