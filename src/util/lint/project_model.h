// Whole-program project model for seg-lint v2.
//
// Where linter.h lints one file at a time (plus the headers it reaches),
// the project model loads *every* file under the lint roots once, lexes it
// once, resolves every quoted #include into an edge of an include graph,
// and assigns each file a layer from a declarative `tools/layers.toml`.
// The cross-file rules run on top of this model:
//
//   R-ARCH1  layering: a file may only include headers of its own layer or
//            of layers its layer's `allow` list names. Violations carry the
//            offending include chain from a translation unit that reaches
//            the bad edge.
//   R-ARCH2  include cycles: the quoted-include graph must stay acyclic.
//
// The model is also the substrate for the cross-TU symbol index
// (symbol_index.h) and the project-wide R-API1 deprecated-entry-point set.
//
// layers.toml subset understood by parse_layers():
//
//   [[layer]]
//   name = "graph"
//   paths = ["src/graph/"]
//   allow = ["util", "dns"]
//
// `paths` entries are substrings matched against '/'-normalized file
// paths; `allow = ["*"]` lets a layer (e.g. tools) include everything.
// Files matching no layer are unconstrained.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/lint/linter.h"

namespace seg::lint {

struct LayerSpec {
  std::string name;
  std::vector<std::string> paths;  ///< path substrings selecting the layer's files
  std::vector<std::string> allow;  ///< layer names this layer may include; "*" = all
};

struct LayersConfig {
  std::vector<LayerSpec> layers;

  /// Index into `layers` of the layer owning `path`, or npos. When several
  /// `paths` substrings match, the longest match wins (so "tests/util/lint"
  /// can carve a sub-tree out of "tests/").
  std::size_t layer_of(std::string_view path) const;

  /// True when a file of layer `from` may include a header of layer `to`.
  bool allowed(std::size_t from, std::size_t to) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Parses the layers.toml subset documented above. Throws std::runtime_error
/// with a line-bearing message on anything it does not understand.
LayersConfig parse_layers(std::string_view toml_text);

/// One file of the project model.
struct ProjectFile {
  /// Project-relative display path (normalize_path of the discovered path);
  /// all findings and messages use this form so baseline keys from an
  /// absolute checkout and from a `git archive` scratch tree compare equal.
  std::string path;
  std::string disk_path;  ///< as discovered on disk; used for include resolution
  std::string text;       ///< full source; lex token views point into it
  LexResult lex;
  bool is_header = false;
  std::size_t layer = LayersConfig::npos;

  /// One resolved quoted include edge.
  struct Edge {
    std::size_t target = static_cast<std::size_t>(-1);  ///< file index, or npos
    std::string raw_target;                             ///< as written in the directive
    std::size_t line = 0;
  };
  std::vector<Edge> edges;
};

class ProjectModel {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Loads every file in `sources` (display paths kept verbatim), lexes
  /// each once, resolves quoted includes against sibling directories and
  /// `options.include_roots`, and assigns layers.
  static ProjectModel build(const std::vector<std::string>& sources,
                            const LintOptions& options, const LayersConfig& layers);

  /// In-memory variant for tests: `files` are (path, text) pairs; includes
  /// resolve by path suffix against the supplied set.
  static ProjectModel from_memory(
      const std::vector<std::pair<std::string, std::string>>& files,
      const LayersConfig& layers);

  const std::vector<ProjectFile>& files() const { return files_; }
  const LayersConfig& layers() const { return layers_; }

  /// Index of the file whose path equals `path` or ends with "/<path>",
  /// or npos.
  std::size_t index_of(std::string_view path) const;

  /// Shortest include chain (as file indices, starting at a .cpp when one
  /// reaches it) ending at `file`. Used to report *how* a layering
  /// violation becomes part of a translation unit.
  std::vector<std::size_t> chain_to(std::size_t file) const;

 private:
  void resolve_edges();
  void assign_layers();

  std::vector<ProjectFile> files_;  // sorted by path
  LayersConfig layers_;
};

/// R-ARCH1: every resolved include edge must stay within the including
/// file's layer or an allowed layer. Suppressible on the #include line with
/// `// seg-lint: allow(R-ARCH1)` (or `allow(arch)`). When `usage` is
/// non-null, suppressions that drop a finding are marked used.
std::vector<Finding> check_layering(const ProjectModel& model,
                                    SuppressionUsage* usage = nullptr);

/// R-ARCH2: reports each strongly-connected component of the quoted-include
/// graph with more than one file (or a self-include) once, on its
/// lexicographically first file, naming the cycle.
std::vector<Finding> check_include_cycles(const ProjectModel& model);

}  // namespace seg::lint
