#include "util/lint/rules.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <string_view>

namespace seg::lint {

using Tokens = std::vector<Token>;

bool is_id(const Token& tok, std::string_view text) {
  return tok.kind == TokKind::kIdentifier && tok.text == text;
}

bool is_punct(const Token& tok, std::string_view text) {
  return tok.kind == TokKind::kPunct && tok.text == text;
}

std::size_t skip_balanced(const Tokens& toks, std::size_t open) {
  const std::string_view opener = toks[open].text;
  const std::string_view closer = opener == "(" ? ")" : opener == "[" ? "]" : "}";
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], opener)) {
      ++depth;
    } else if (is_punct(toks[i], closer)) {
      if (--depth == 0) {
        return i + 1;
      }
    }
  }
  return toks.size();
}

bool non_type_keyword(std::string_view id) {
  static constexpr std::array<std::string_view, 12> kKeywords = {
      "return", "co_return", "throw",    "delete", "new",      "case",
      "goto",   "operator",  "else",     "do",     "co_await", "co_yield"};
  return std::find(kKeywords.begin(), kKeywords.end(), id) != kKeywords.end();
}

std::size_t paren_list_arity(const Tokens& toks, std::size_t open) {
  const std::size_t close = skip_balanced(toks, open);
  if (close == open + 2) {
    return 0;
  }
  std::size_t arity = 1;
  int depth = 0;
  for (std::size_t i = open; i + 1 < close; ++i) {
    if (is_punct(toks[i], "(") || is_punct(toks[i], "[") || is_punct(toks[i], "{")) {
      ++depth;
    } else if (is_punct(toks[i], ")") || is_punct(toks[i], "]") ||
               is_punct(toks[i], "}")) {
      --depth;
    } else if (depth == 1 && is_punct(toks[i], ",")) {
      ++arity;
    }
  }
  return arity;
}

bool is_function_heading(const Tokens& toks, std::size_t name, std::size_t open) {
  std::size_t i = skip_balanced(toks, open);
  while (i < toks.size() &&
         (is_id(toks[i], "const") || is_id(toks[i], "noexcept") ||
          is_id(toks[i], "override") || is_id(toks[i], "final") || is_punct(toks[i], "&") ||
          is_punct(toks[i], "&&"))) {
    ++i;
  }
  if (i < toks.size() && is_punct(toks[i], "{")) {
    return true;  // definition body
  }
  // Declaration: a type-like token directly precedes the name (calls are
  // preceded by punctuation such as `.`/`->`/`=`/`(`/`,`/`;` or `return`).
  if (name > 0) {
    const auto& prev = toks[name - 1];
    if ((prev.kind == TokKind::kIdentifier && !non_type_keyword(prev.text)) ||
        is_punct(prev, ">") || is_punct(prev, "*") || is_punct(prev, "&")) {
      return true;
    }
  }
  return false;
}

// Skips a balanced template-argument list starting at `open` (which must
// point at `<`). Returns the index just past the matching `>`, or `open`
// when the angle bracket never closes in a plausible span (then it was a
// comparison, not a template). `>>` closes two levels.
std::size_t skip_template_args(const Tokens& toks, std::size_t open) {
  constexpr std::size_t kMaxSpan = 160;
  int depth = 0;
  for (std::size_t i = open; i < toks.size() && i < open + kMaxSpan; ++i) {
    const auto& t = toks[i];
    if (is_punct(t, "<") || is_punct(t, "<<")) {
      depth += t.text == "<<" ? 2 : 1;
    } else if (is_punct(t, ">") || is_punct(t, ">>")) {
      depth -= t.text == ">>" ? 2 : 1;
      if (depth <= 0) {
        return i + 1;
      }
    } else if (is_punct(t, ";") || is_punct(t, "{")) {
      return open;  // statement ended: not a template argument list
    }
  }
  return open;
}

bool is_unordered_container(std::string_view id) {
  return id == "unordered_map" || id == "unordered_set" ||
         id == "unordered_multimap" || id == "unordered_multiset";
}

namespace {

bool contains(const std::vector<std::string>& haystack, std::string_view needle) {
  return std::find(haystack.begin(), haystack.end(), needle) != haystack.end();
}

// --- R-DET1 ---------------------------------------------------------------

// True when the call at `i` is qualified by something other than `std`
// (member call `obj.rand()` or foreign namespace `foo::rand()`).
bool foreign_qualified(const Tokens& toks, std::size_t i) {
  if (i == 0) {
    return false;
  }
  const auto& prev = toks[i - 1];
  if (is_punct(prev, ".") || is_punct(prev, "->")) {
    return true;
  }
  if (is_punct(prev, "::")) {
    return !(i >= 2 && is_id(toks[i - 2], "std"));
  }
  return false;
}

void rule_det1(const FileInfo& info, const Tokens& toks, std::vector<Finding>& out) {
  if (info.timing_allowed) {
    return;
  }
  const auto flag = [&](std::size_t i, std::string message) {
    out.push_back(Finding{info.path, toks[i].line, "R-DET1", std::move(message)});
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const auto& t = toks[i];
    if (t.kind != TokKind::kIdentifier) {
      continue;
    }
    if ((t.text == "rand" || t.text == "srand") && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "(") && !foreign_qualified(toks, i)) {
      flag(i, std::string(t.text) + "() draws from ambient global state; use the "
                                    "seeded seg::util RNG so runs are reproducible");
    } else if (t.text == "random_device" && !foreign_qualified(toks, i)) {
      flag(i, "std::random_device is nondeterministic; seed a util::Rng explicitly");
    } else if (t.text == "time" && i + 2 < toks.size() && is_punct(toks[i + 1], "(") &&
               (is_id(toks[i + 2], "nullptr") || is_id(toks[i + 2], "NULL") ||
                toks[i + 2].text == "0") &&
               !foreign_qualified(toks, i)) {
      flag(i, "time(nullptr) reads the wall clock in pipeline code; pass the day/"
              "timestamp in from the caller");
    } else if (t.text == "system_clock" && i + 2 < toks.size() &&
               is_punct(toks[i + 1], "::") && is_id(toks[i + 2], "now")) {
      flag(i, "system_clock::now() in pipeline code makes output depend on run "
              "time; open a seg::obs::Span for instrumentation");
    }
  }
}

// --- R-OBS1 ---------------------------------------------------------------

void rule_obs1(const FileInfo& info, const Tokens& toks, std::vector<Finding>& out) {
  if (info.obs_allowed) {
    return;
  }
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const auto& t = toks[i];
    if (t.kind != TokKind::kIdentifier) {
      continue;
    }
    if (t.text == "steady_clock" || t.text == "high_resolution_clock") {
      out.push_back(Finding{
          info.path, t.line, "R-OBS1",
          std::string(t.text) + " read outside the obs layer: open a "
          "seg::obs::Span (or a metric) so the timing shows up in traces and "
          "run reports"});
    } else if (t.text == "Stopwatch") {
      out.push_back(Finding{
          info.path, t.line, "R-OBS1",
          "Stopwatch is obs-internal; time the region with a seg::obs::Span "
          "so the measurement is exported with the trace/run report"});
    }
  }
}

// --- R-MEM1 ---------------------------------------------------------------

void rule_mem1(const FileInfo& info, const Tokens& toks, std::vector<Finding>& out) {
  if (info.mmap_allowed) {
    return;
  }
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const auto& t = toks[i];
    if (t.kind != TokKind::kIdentifier) {
      continue;
    }
    const bool mapping_call =
        (t.text == "mmap" || t.text == "munmap" || t.text == "mremap" ||
         t.text == "madvise" || t.text == "mbind") &&
        i + 1 < toks.size() && is_punct(toks[i + 1], "(");
    const bool mapping_syscall_nr =
        t.text == "__NR_mmap" || t.text == "__NR_munmap" ||
        t.text == "__NR_mremap" || t.text == "__NR_madvise" ||
        t.text == "__NR_mbind";
    if (mapping_call || mapping_syscall_nr) {
      out.push_back(Finding{
          info.path, t.line, "R-MEM1",
          std::string(t.text) + " issued outside util/mmap_file: map through "
          "util::MmapFile so unmapping and SEG_NUMA_POLICY placement are "
          "handled in one place"});
    }
  }
}

// --- R-WIRE1 --------------------------------------------------------------
//
// The dns/wire parsers take untrusted bytes straight off the network, so
// every bounds check must live in one place: dns/wire/bytes.h::ByteCursor.
// On the wire surface (info.wire_scope), subscripting a raw byte buffer
// with a computed index, or doing pointer arithmetic on a raw byte pointer,
// is a finding. Literal-index subscripts (rdata[0] ... rdata[3]) are
// fixed-lane extraction from an already bounds-checked take() and stay
// legal; the ByteCursor implementation itself is allowlisted.

// True when the template argument list starting at `open` (pointing at `<`)
// spells a byte element type: `unsigned char`, `uint8_t`, or `byte`.
bool byte_template_args(const Tokens& toks, std::size_t open, std::size_t past) {
  for (std::size_t j = open + 1; j + 1 < past; ++j) {
    if (toks[j].kind != TokKind::kIdentifier) {
      continue;
    }
    if (toks[j].text == "uint8_t" || toks[j].text == "byte") {
      return true;
    }
    if (toks[j].text == "unsigned" && j + 1 < past && is_id(toks[j + 1], "char")) {
      return true;
    }
  }
  return false;
}

void rule_wire1(const FileInfo& info, const Tokens& toks, std::vector<Finding>& out) {
  if (!info.wire_scope || info.wire_allowed) {
    return;
  }
  std::vector<std::string> buffers;   // span-typed / take()-derived views
  std::vector<std::string> pointers;  // raw byte pointers
  const auto record = [&](std::size_t at, std::vector<std::string>& into) {
    std::size_t j = at;
    while (j < toks.size() &&
           (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
            is_punct(toks[j], "&&") || is_id(toks[j], "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdentifier &&
        !contains(into, toks[j].text)) {
      into.emplace_back(toks[j].text);
    }
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const auto& t = toks[i];
    if (t.kind != TokKind::kIdentifier) {
      continue;
    }
    // `span<const unsigned char> name` (params, locals, members).
    if (t.text == "span" && i + 1 < toks.size() && is_punct(toks[i + 1], "<")) {
      const std::size_t past = skip_template_args(toks, i + 1);
      if (past != i + 1 && byte_template_args(toks, i + 1, past)) {
        record(past, buffers);
      }
      continue;
    }
    // `const unsigned char* p` / `const uint8_t* p`.
    if ((t.text == "char" && i >= 1 && is_id(toks[i - 1], "unsigned")) ||
        t.text == "uint8_t") {
      if (i + 2 < toks.size() && is_punct(toks[i + 1], "*") &&
          toks[i + 2].kind == TokKind::kIdentifier) {
        record(i + 1, pointers);
      }
      continue;
    }
    // `name = <expr>.take(...)` / `name = <expr>.buffer(...)`: the result
    // views raw parser bytes.
    if ((t.text == "take" || t.text == "buffer") && i >= 1 &&
        is_punct(toks[i - 1], ".") && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "(") && i >= 4 && is_punct(toks[i - 3], "=") &&
        toks[i - 4].kind == TokKind::kIdentifier) {
      if (!contains(buffers, toks[i - 4].text)) {
        buffers.emplace_back(toks[i - 4].text);
      }
    }
  }
  if (buffers.empty() && pointers.empty()) {
    return;
  }
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier) {
      continue;
    }
    const bool is_buffer = contains(buffers, toks[i].text);
    const bool is_pointer = contains(pointers, toks[i].text);
    if (!is_buffer && !is_pointer) {
      continue;
    }
    // Declarations re-match their own name; only uses matter, and a use is
    // never directly preceded by a type-ish token.
    if (i >= 1 && (toks[i - 1].kind == TokKind::kIdentifier ||
                   is_punct(toks[i - 1], ">") || is_punct(toks[i - 1], "*"))) {
      continue;
    }
    if (i + 1 < toks.size() && is_punct(toks[i + 1], "[")) {
      const std::size_t close = skip_balanced(toks, i + 1);
      const bool literal_index =
          close == i + 4 && toks[i + 2].kind == TokKind::kNumber;
      if (!literal_index) {
        out.push_back(Finding{
            info.path, toks[i].line, "R-WIRE1",
            "computed subscript on raw parser bytes '" + std::string(toks[i].text) +
                "[...]': index through dns/wire/bytes.h ByteCursor (u8_at/"
                "view_at) so every bounds check on untrusted input lives in "
                "one place"});
      }
      continue;
    }
    if (is_pointer && i + 1 < toks.size() &&
        (is_punct(toks[i + 1], "++") || is_punct(toks[i + 1], "--") ||
         is_punct(toks[i + 1], "+=") || is_punct(toks[i + 1], "-=") ||
         is_punct(toks[i + 1], "+") || is_punct(toks[i + 1], "-"))) {
      out.push_back(Finding{
          info.path, toks[i].line, "R-WIRE1",
          "pointer arithmetic on raw parser bytes '" + std::string(toks[i].text) +
              "': advance a dns/wire/bytes.h ByteCursor instead so the bounds "
              "check cannot be skipped"});
    }
  }
}

// --- R-DET2 ---------------------------------------------------------------

void rule_det2(const FileInfo& info, const Tokens& toks, const UnorderedDecls& decls,
               std::vector<Finding>& out) {
  // In whole-program mode the interprocedural R-DET3 pass (dataflow.h)
  // supersedes this file-local heuristic: it sees through returns,
  // out-params, and callbacks, so it both catches more and false-positives
  // less. R-DET2 stays on for the one-file/stdin drivers, which have no
  // call graph to lean on.
  if (!info.emission || info.whole_program) {
    return;
  }
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_id(toks[i], "for") || !is_punct(toks[i + 1], "(")) {
      continue;
    }
    const std::size_t close = skip_balanced(toks, i + 1);
    // Locate the last top-level `:`; tokens after it (up to `)`) are the
    // range expression. A `;` after it would mean a classic for loop.
    std::size_t colon = 0;
    int depth = 0;
    for (std::size_t j = i + 1; j + 1 < close; ++j) {
      if (is_punct(toks[j], "(") || is_punct(toks[j], "[") || is_punct(toks[j], "{")) {
        ++depth;
      } else if (is_punct(toks[j], ")") || is_punct(toks[j], "]") ||
                 is_punct(toks[j], "}")) {
        --depth;
      } else if (depth == 1 && is_punct(toks[j], ":")) {
        colon = j;
      } else if (depth == 1 && is_punct(toks[j], ";")) {
        colon = 0;  // classic-for init/condition separator resets
      }
    }
    if (colon == 0) {
      continue;
    }
    for (std::size_t j = colon + 1; j + 1 < close; ++j) {
      if (toks[j].kind != TokKind::kIdentifier ||
          (!decls.has_name(toks[j].text) && !decls.has_alias(toks[j].text))) {
        continue;
      }
      // `index.at(key)` / `days_.find(k)->second` iterate a value derived
      // from the container, not the hash table itself — only a bare
      // reference to the container is the ordering hazard.
      if (j + 1 < close && (is_punct(toks[j + 1], ".") || is_punct(toks[j + 1], "->") ||
                            is_punct(toks[j + 1], "(") || is_punct(toks[j + 1], "["))) {
        continue;
      }
      out.push_back(Finding{
          info.path, toks[j].line, "R-DET2",
          "range-for over unordered container '" + std::string(toks[j].text) +
              "' in an emission path: hash-table iteration order leaks into "
              "output; iterate sorted keys or switch to an ordered container"});
      break;
    }
  }
}

// --- R-RACE1 --------------------------------------------------------------

void rule_race1(const FileInfo& info, const Tokens& toks, std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (is_id(toks[i], "vector") && is_punct(toks[i + 1], "<") &&
        is_id(toks[i + 2], "bool") && is_punct(toks[i + 3], ">")) {
      out.push_back(Finding{
          info.path, toks[i].line, "R-RACE1",
          "std::vector<bool> packs elements into shared words, so writes to "
          "distinct indices race under parallel_for; use std::vector<std::uint8_t>"});
    }
  }
}

// --- R-RACE2 --------------------------------------------------------------

struct LambdaCtx {
  bool default_ref = false;
  std::vector<std::string> ref_captures;
  std::vector<std::string> params;
  std::vector<std::string> locals;

  bool is_local(std::string_view id) const {
    return contains(params, id) || contains(locals, id);
  }
  bool captured_by_ref(std::string_view id) const {
    if (contains(ref_captures, id)) {
      return true;
    }
    return default_ref && !is_local(id);
  }
};

// Collects names declared inside the body [begin, end): initialized
// declarations (`Type name = ...`), range-for bindings (`auto& v : ...`),
// structured bindings (`auto [a, b]`), and `Type name(...)` constructor
// locals following a template close.
void collect_body_locals(const Tokens& toks, std::size_t begin, std::size_t end,
                         LambdaCtx& ctx) {
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind != TokKind::kIdentifier || i == begin || i + 1 >= end) {
      continue;
    }
    const auto& prev = toks[i - 1];
    const auto& next = toks[i + 1];
    const bool type_like_prev =
        (prev.kind == TokKind::kIdentifier && !non_type_keyword(prev.text)) ||
        is_punct(prev, "&") || is_punct(prev, "*") || is_punct(prev, ">");
    if (type_like_prev && (is_punct(next, "=") || is_punct(next, ":") ||
                           is_punct(next, ";") ||
                           (is_punct(prev, ">") && is_punct(next, "(")))) {
      ctx.locals.emplace_back(toks[i].text);
    }
  }
  // Structured bindings: auto [&]? [ a, b ] ...
  for (std::size_t i = begin; i + 1 < end; ++i) {
    if (!is_id(toks[i], "auto")) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < end && (is_punct(toks[j], "&") || is_punct(toks[j], "&&"))) {
      ++j;
    }
    if (j >= end || !is_punct(toks[j], "[")) {
      continue;
    }
    for (std::size_t k = j + 1; k < end && !is_punct(toks[k], "]"); ++k) {
      if (toks[k].kind == TokKind::kIdentifier) {
        ctx.locals.emplace_back(toks[k].text);
      }
    }
  }
}

// Walks a member-access chain backwards from `pos` (the token before a `.`
// or `[`). Returns the index of the base identifier, or npos when the chain
// starts from a call result or other unanalyzable expression. Sets
// `partitioned` when any subscript along the chain indexes with a
// local/param identifier.
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

std::size_t chain_base(const Tokens& toks, std::size_t pos, const LambdaCtx& ctx,
                       bool* partitioned) {
  std::size_t i = pos;
  while (true) {
    if (is_punct(toks[i], "]")) {
      // Scan back to the matching `[`, checking the index expression.
      int depth = 0;
      std::size_t j = i;
      while (true) {
        if (is_punct(toks[j], "]")) {
          ++depth;
        } else if (is_punct(toks[j], "[")) {
          if (--depth == 0) {
            break;
          }
        } else if (depth >= 1 && toks[j].kind == TokKind::kIdentifier &&
                   ctx.is_local(toks[j].text)) {
          // A worker-local identifier anywhere in the index expression —
          // including nested subscripts like out[machine_map[m]] — marks
          // the write as partitioned by this iteration's slot.
          *partitioned = true;
        }
        if (j == 0) {
          return kNpos;
        }
        --j;
      }
      if (j == 0) {
        return kNpos;
      }
      i = j - 1;
      continue;
    }
    if (toks[i].kind == TokKind::kIdentifier) {
      if (i >= 1 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
        i -= 2;  // keep walking toward the base
        continue;
      }
      return i;
    }
    return kNpos;  // call result, cast, etc. — give up rather than guess
  }
}

bool is_assignment_op(const Token& tok) {
  static constexpr std::array<std::string_view, 11> kOps = {
      "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
  return tok.kind == TokKind::kPunct &&
         std::find(kOps.begin(), kOps.end(), tok.text) != kOps.end();
}

bool is_growth_call(std::string_view id) {
  return id == "push_back" || id == "emplace_back" || id == "insert" ||
         id == "emplace" || id == "push_front" || id == "emplace_front";
}

void check_parallel_body(const FileInfo& info, const Tokens& toks, std::size_t begin,
                         std::size_t end, const LambdaCtx& ctx,
                         std::vector<Finding>& out) {
  for (std::size_t i = begin; i < end; ++i) {
    // Growth calls: base.push_back(...) and friends.
    if ((is_punct(toks[i], ".") || is_punct(toks[i], "->")) && i + 2 < end &&
        toks[i + 1].kind == TokKind::kIdentifier && is_growth_call(toks[i + 1].text) &&
        is_punct(toks[i + 2], "(") && i > begin) {
      bool partitioned = false;
      const std::size_t base = chain_base(toks, i - 1, ctx, &partitioned);
      if (base != kNpos && !partitioned && ctx.captured_by_ref(toks[base].text)) {
        out.push_back(Finding{
            info.path, toks[i + 1].line, "R-RACE2",
            "'" + std::string(toks[base].text) + "." + std::string(toks[i + 1].text) +
                "' grows a by-reference capture inside a parallel body; collect "
                "into per-chunk buffers and merge in chunk order"});
      }
    }
    // Unpartitioned subscript writes: base[expr] = ... with no local index.
    if (is_punct(toks[i], "]") && i + 1 < end && is_assignment_op(toks[i + 1]) &&
        i > begin) {
      bool partitioned = false;
      const std::size_t base = chain_base(toks, i, ctx, &partitioned);
      if (base != kNpos && !partitioned && ctx.captured_by_ref(toks[base].text)) {
        out.push_back(Finding{
            info.path, toks[i].line, "R-RACE2",
            "write to '" + std::string(toks[base].text) + "[...]' inside a parallel "
                "body is not partitioned by the worker's index; concurrent "
                "iterations may hit the same slot"});
      }
    }
  }
}

void rule_race2(const FileInfo& info, const Tokens& toks, std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier ||
        (toks[i].text != "parallel_for" && toks[i].text != "parallel_chunks") ||
        !is_punct(toks[i + 1], "(")) {
      continue;
    }
    const std::size_t call_end = skip_balanced(toks, i + 1);
    // Find the lambda's capture list inside the argument list.
    std::size_t intro = kNpos;
    for (std::size_t j = i + 2; j + 1 < call_end; ++j) {
      if (is_punct(toks[j], "[") &&
          (is_punct(toks[j - 1], ",") || is_punct(toks[j - 1], "("))) {
        intro = j;
        break;
      }
    }
    if (intro == kNpos) {
      continue;
    }
    LambdaCtx ctx;
    const std::size_t intro_end = skip_balanced(toks, intro);
    for (std::size_t j = intro + 1; j + 1 < intro_end; ++j) {
      if (is_punct(toks[j], "&")) {
        if (j + 1 < intro_end - 1 && toks[j + 1].kind == TokKind::kIdentifier) {
          ctx.ref_captures.emplace_back(toks[j + 1].text);
          ++j;
        } else {
          ctx.default_ref = true;
        }
      }
    }
    if (!ctx.default_ref && ctx.ref_captures.empty()) {
      continue;  // by-value lambda: nothing shared to race on
    }
    std::size_t cursor = intro_end;
    if (cursor < call_end && is_punct(toks[cursor], "(")) {
      const std::size_t params_end = skip_balanced(toks, cursor);
      std::string_view last_id;
      for (std::size_t j = cursor + 1; j + 1 < params_end; ++j) {
        if (toks[j].kind == TokKind::kIdentifier) {
          last_id = toks[j].text;
        } else if (is_punct(toks[j], ",") && !last_id.empty()) {
          ctx.params.emplace_back(last_id);
          last_id = {};
        }
      }
      if (!last_id.empty()) {
        ctx.params.emplace_back(last_id);
      }
      cursor = params_end;
    }
    while (cursor < call_end && !is_punct(toks[cursor], "{")) {
      ++cursor;  // skip mutable / noexcept / -> trailing return
    }
    if (cursor >= call_end) {
      continue;
    }
    const std::size_t body_end = skip_balanced(toks, cursor);
    collect_body_locals(toks, cursor + 1, body_end - 1, ctx);
    check_parallel_body(info, toks, cursor + 1, body_end - 1, ctx, out);
    i = body_end - 1;
  }
}

// --- R-API1 ---------------------------------------------------------------

void rule_api1(const FileInfo& info, const Tokens& toks, const DeprecatedDecls& deprecated,
               std::vector<Finding>& out) {
  // Test code is exempt: the deprecated path keeps its regression coverage
  // until the entry point is deleted outright.
  if (info.is_header || info.is_test || deprecated.decls.empty()) {
    return;
  }
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier || !is_punct(toks[i + 1], "(")) {
      continue;
    }
    const std::size_t arity = paren_list_arity(toks, i + 1);
    if (!deprecated.matches(toks[i].text, arity) || is_function_heading(toks, i, i + 1)) {
      continue;
    }
    out.push_back(Finding{
        info.path, toks[i].line, "R-API1",
        "call to deprecated entry point '" + std::string(toks[i].text) + "' (" +
            std::to_string(arity) + " args, tagged seg-deprecated); migrate to the "
            "replacement overload"});
  }
}

// --- R-LIFE1 ---------------------------------------------------------------

// Value-typed names a `return <name>;` must not escape by reference: locals
// and by-value parameters whose declarations carry no `&`, `*`, or view
// type of their own (returning a string_view *parameter* by value is a
// copy, not a dangle).
struct OwningNames {
  std::vector<std::string> names;
  bool contains_name(std::string_view id) const { return contains(names, id); }
};

bool is_view_type(std::string_view id) {
  return id == "string_view" || id == "span";
}

// Records the by-value owning parameters of the list opening at `open`.
void collect_value_params(const Tokens& toks, std::size_t open, OwningNames& out) {
  const std::size_t close = skip_balanced(toks, open);
  std::size_t seg_begin = open + 1;
  int depth = 0;
  for (std::size_t i = open; i < close; ++i) {
    if (is_punct(toks[i], "(") || is_punct(toks[i], "[") || is_punct(toks[i], "{") ||
        is_punct(toks[i], "<")) {
      ++depth;
    } else if (is_punct(toks[i], ")") || is_punct(toks[i], "]") ||
               is_punct(toks[i], "}") || is_punct(toks[i], ">")) {
      --depth;
    }
    if ((depth == 1 && is_punct(toks[i], ",")) || (depth == 0 && i + 1 == close)) {
      // One parameter segment [seg_begin, i).
      bool by_value = true;
      std::size_t name = kNpos;
      for (std::size_t j = seg_begin; j < i; ++j) {
        if (is_punct(toks[j], "&") || is_punct(toks[j], "&&") ||
            is_punct(toks[j], "*") ||
            (toks[j].kind == TokKind::kIdentifier && is_view_type(toks[j].text))) {
          by_value = false;
        }
        if (is_punct(toks[j], "=")) {
          break;  // default argument: the name came before it
        }
        if (toks[j].kind == TokKind::kIdentifier) {
          name = j;
        }
      }
      // A lone segment token is a type with no name (`(int)`), not a param.
      if (by_value && name != kNpos && name > seg_begin &&
          !contains(out.names, toks[name].text)) {
        out.names.emplace_back(toks[name].text);
      }
      seg_begin = i + 1;
    }
  }
}

// Records owning locals declared inside [begin, end): `Type name =`,
// `Type name;`, `Type name(...)` / `Type name{...}` where the token before
// the name is type-like and not a reference/pointer/view, and the
// declaration is not `static`.
void collect_owning_locals(const Tokens& toks, std::size_t begin, std::size_t end,
                           OwningNames& out) {
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind != TokKind::kIdentifier || i == begin || i + 1 >= end) {
      continue;
    }
    const auto& prev = toks[i - 1];
    const auto& next = toks[i + 1];
    const bool declarator_next = is_punct(next, "=") || is_punct(next, ";") ||
                                 is_punct(next, "{");
    if (!declarator_next) {
      continue;
    }
    const bool type_like_prev = prev.kind == TokKind::kIdentifier &&
                                !non_type_keyword(prev.text) &&
                                !is_view_type(prev.text) && !is_id(prev, "static");
    const bool template_close_prev = is_punct(prev, ">");
    if (!type_like_prev && !template_close_prev) {
      continue;
    }
    // Scan the whole declaration statement (back to the previous `;`, `{`,
    // or `}`) for `static`: a static local outlives the return, so
    // `static sim::World world{...}; return world;` is legal.
    bool is_static = false;
    for (std::size_t j = i; j > begin; --j) {
      const auto& t = toks[j - 1];
      if (is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}")) {
        break;
      }
      if (is_id(t, "static")) {
        is_static = true;
        break;
      }
    }
    if (!is_static && !contains(out.names, toks[i].text)) {
      out.names.emplace_back(toks[i].text);
    }
  }
}

void rule_life1(const FileInfo& info, const Tokens& toks, std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier || !is_punct(toks[i + 1], "(") ||
        !is_function_heading(toks, i, i + 1)) {
      continue;
    }
    // Return-type window: walk back over type-ish tokens to the statement
    // boundary and look for a reference or view.
    std::size_t start = i;
    while (start > 0) {
      const auto& t = toks[start - 1];
      const bool type_ish =
          (t.kind == TokKind::kIdentifier && !non_type_keyword(t.text)) ||
          is_punct(t, "::") || is_punct(t, "<") || is_punct(t, ">") ||
          is_punct(t, "*") || is_punct(t, "&") || is_punct(t, ",");
      if (!type_ish) {
        break;
      }
      --start;
    }
    // Only a reference or view at the *top level* of the return type counts:
    // `std::vector<std::string_view>` owns its elements' views are into the
    // caller's data, so angle-bracket-nested matches are ignored.
    bool returns_ref_or_view = false;
    int angle = 0;
    for (std::size_t j = start; j < i; ++j) {
      if (is_punct(toks[j], "<")) {
        ++angle;
      } else if (is_punct(toks[j], ">")) {
        --angle;
      } else if (is_punct(toks[j], ">>")) {
        angle -= 2;
      } else if (angle <= 0 &&
                 (is_punct(toks[j], "&") || is_punct(toks[j], "&&") ||
                  (toks[j].kind == TokKind::kIdentifier && is_view_type(toks[j].text)))) {
        returns_ref_or_view = true;
        break;
      }
    }
    if (!returns_ref_or_view) {
      continue;
    }
    std::size_t after = skip_balanced(toks, i + 1);
    while (after < toks.size() &&
           (is_id(toks[after], "const") || is_id(toks[after], "noexcept") ||
            is_id(toks[after], "override") || is_id(toks[after], "final") ||
            is_punct(toks[after], "&") || is_punct(toks[after], "&&"))) {
      ++after;
    }
    if (after >= toks.size() || !is_punct(toks[after], "{")) {
      continue;  // declaration only
    }
    const std::size_t body_end = skip_balanced(toks, after);

    OwningNames owning;
    collect_value_params(toks, i + 1, owning);
    collect_owning_locals(toks, after + 1, body_end - 1, owning);

    for (std::size_t j = after + 1; j + 1 < body_end; ++j) {
      if (is_punct(toks[j], "[")) {
        // A `return` inside a nested lambda body returns from the lambda,
        // not from this function — skip `[..](..){..}` wholesale. A `[` that
        // is just a subscript (no `{` after the bracket/parameter clause)
        // skips only to its `]`.
        std::size_t k = skip_balanced(toks, j);  // just past ']'
        if (k < body_end && is_punct(toks[k], "(")) {
          k = skip_balanced(toks, k);
        }
        while (k < body_end &&
               (is_id(toks[k], "mutable") || is_id(toks[k], "noexcept") ||
                is_id(toks[k], "constexpr"))) {
          ++k;
        }
        if (k < body_end && is_punct(toks[k], "->")) {
          while (k < body_end && !is_punct(toks[k], "{") && !is_punct(toks[k], ";")) {
            ++k;
          }
        }
        j = (k < body_end && is_punct(toks[k], "{") ? skip_balanced(toks, k)
                                                    : skip_balanced(toks, j)) -
            1;
        continue;
      }
      if (!is_id(toks[j], "return")) {
        continue;
      }
      std::size_t stmt_end = j + 1;
      int depth = 0;
      while (stmt_end < body_end && !(depth == 0 && is_punct(toks[stmt_end], ";"))) {
        if (is_punct(toks[stmt_end], "(") || is_punct(toks[stmt_end], "[") ||
            is_punct(toks[stmt_end], "{")) {
          ++depth;
        } else if (is_punct(toks[stmt_end], ")") || is_punct(toks[stmt_end], "]") ||
                   is_punct(toks[stmt_end], "}")) {
          --depth;
        }
        ++stmt_end;
      }
      // `return <local>;` — the reference/view outlives the storage.
      if (stmt_end == j + 2 && toks[j + 1].kind == TokKind::kIdentifier &&
          owning.contains_name(toks[j + 1].text)) {
        out.push_back(Finding{
            info.path, toks[j + 1].line, "R-LIFE1",
            "returning a reference/view to function-local '" +
                std::string(toks[j + 1].text) +
                "'; the storage dies when the function returns — return by "
                "value or take the owner from the caller"});
      }
      // `return ... something_batch(...) ...;` — a view into the
      // by-value batch result of the parallel feature path.
      for (std::size_t k = j + 1; k + 1 < stmt_end; ++k) {
        if (toks[k].kind == TokKind::kIdentifier && is_punct(toks[k + 1], "(") &&
            toks[k].text.size() > 6 &&
            toks[k].text.substr(toks[k].text.size() - 6) == "_batch") {
          out.push_back(Finding{
              info.path, toks[k].line, "R-LIFE1",
              "returning a reference/view into the temporary returned by '" +
                  std::string(toks[k].text) +
                  "(...)'; batch queries return by value, so the view dangles "
                  "— materialize the result first"});
          break;
        }
      }
      j = stmt_end;
    }
    i = body_end - 1;
  }
}

// --- R-HDR1 / R-HDR2 ------------------------------------------------------

void rule_headers(const FileInfo& info, const Tokens& toks, std::vector<Finding>& out) {
  if (!info.is_header) {
    return;
  }
  bool has_pragma_once = false;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (is_punct(toks[i], "#") && is_id(toks[i + 1], "pragma") &&
        is_id(toks[i + 2], "once")) {
      has_pragma_once = true;
      break;
    }
  }
  if (!has_pragma_once) {
    out.push_back(Finding{info.path, 1, "R-HDR1",
                          "header is missing #pragma once; double inclusion breaks "
                          "the one-definition rule"});
  }
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (is_id(toks[i], "using") && is_id(toks[i + 1], "namespace")) {
      out.push_back(Finding{info.path, toks[i].line, "R-HDR2",
                            "`using namespace` at header scope pollutes every "
                            "includer; qualify names or alias inside functions"});
    }
  }
}

}  // namespace

// --- Declaration collection -----------------------------------------------

bool UnorderedDecls::has_name(std::string_view id) const {
  return contains(names, id);
}

bool UnorderedDecls::has_alias(std::string_view id) const {
  return contains(aliases, id);
}

void collect_unordered_decls(const std::vector<Token>& tokens, UnorderedDecls& decls) {
  const auto record_declared_name = [&](std::size_t after_type) {
    std::size_t j = after_type;
    while (j < tokens.size() &&
           (is_punct(tokens[j], "&") || is_punct(tokens[j], "*") ||
            is_punct(tokens[j], "&&") || is_id(tokens[j], "const"))) {
      ++j;
    }
    if (j < tokens.size() && tokens[j].kind == TokKind::kIdentifier &&
        !contains(decls.names, tokens[j].text)) {
      decls.names.emplace_back(tokens[j].text);
    }
  };

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const auto& t = tokens[i];
    if (t.kind != TokKind::kIdentifier) {
      continue;
    }
    // `using Alias = ... unordered_xxx< ... > ;`
    if (t.text == "using" && i + 2 < tokens.size() &&
        tokens[i + 1].kind == TokKind::kIdentifier && is_punct(tokens[i + 2], "=")) {
      for (std::size_t j = i + 3; j < tokens.size() && !is_punct(tokens[j], ";"); ++j) {
        if (tokens[j].kind == TokKind::kIdentifier &&
            is_unordered_container(tokens[j].text)) {
          if (!contains(decls.aliases, tokens[i + 1].text)) {
            decls.aliases.emplace_back(tokens[i + 1].text);
          }
          break;
        }
      }
      continue;
    }
    // Direct declaration: `unordered_map< ... > [cv/ref] name`.
    if (is_unordered_container(t.text) && i + 1 < tokens.size() &&
        is_punct(tokens[i + 1], "<")) {
      const std::size_t past = skip_template_args(tokens, i + 1);
      if (past != i + 1) {
        record_declared_name(past);
      }
      continue;
    }
    // Alias-typed declaration: `Alias name` or `Alias< ... > name`.
    if (contains(decls.aliases, t.text) && i + 1 < tokens.size()) {
      if (is_punct(tokens[i + 1], "<")) {
        const std::size_t past = skip_template_args(tokens, i + 1);
        if (past != i + 1) {
          record_declared_name(past);
        }
      } else {
        record_declared_name(i + 1);
      }
    }
  }
}

bool DeprecatedDecls::matches(std::string_view name, std::size_t arity) const {
  return std::any_of(decls.begin(), decls.end(), [&](const Decl& d) {
    return d.arity == arity && d.name == name;
  });
}

void collect_deprecated_decls(const LexResult& lex, DeprecatedDecls& decls) {
  for (const std::size_t marker : lex.deprecated_markers) {
    // First token past the marker line starts the tagged declaration; the
    // declared name is the identifier directly before its parameter list.
    std::size_t begin = 0;
    while (begin < lex.tokens.size() && lex.tokens[begin].line <= marker) {
      ++begin;
    }
    for (std::size_t i = begin; i + 1 < lex.tokens.size(); ++i) {
      if (is_punct(lex.tokens[i], ";") || is_punct(lex.tokens[i], "{")) {
        break;  // declaration ended without a parameter list
      }
      if (lex.tokens[i].kind != TokKind::kIdentifier ||
          !is_punct(lex.tokens[i + 1], "(")) {
        continue;
      }
      DeprecatedDecls::Decl decl;
      decl.name = std::string(lex.tokens[i].text);
      decl.arity = paren_list_arity(lex.tokens, i + 1);
      const bool known = std::any_of(
          decls.decls.begin(), decls.decls.end(),
          [&](const DeprecatedDecls::Decl& d) {
            return d.name == decl.name && d.arity == decl.arity;
          });
      if (!known) {
        decls.decls.push_back(std::move(decl));
      }
      break;
    }
  }
}

bool suppression_covers(std::string_view directive_rule, std::string_view rule) {
  if (directive_rule == rule) {
    return true;
  }
  // Category form: "arch" covers R-ARCH1/R-ARCH2. The category is the
  // lowercase run of letters between "R-" and the trailing digits.
  if (rule.substr(0, 2) != "R-") {
    return false;
  }
  std::string_view category = rule.substr(2);
  while (!category.empty() &&
         std::isdigit(static_cast<unsigned char>(category.back())) != 0) {
    category.remove_suffix(1);
  }
  if (category.size() != directive_rule.size()) {
    return false;
  }
  for (std::size_t i = 0; i < category.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(category[i])) != directive_rule[i]) {
      return false;
    }
  }
  return true;
}

std::vector<Finding> apply_suppressions(std::vector<Finding> findings,
                                        const std::vector<Suppression>& suppressions,
                                        std::vector<char>* used) {
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (auto& finding : findings) {
    bool suppressed = false;
    for (std::size_t s = 0; s < suppressions.size(); ++s) {
      const auto& directive = suppressions[s];
      if (!suppression_covers(directive.rule, finding.rule)) {
        continue;
      }
      if (directive.whole_file || finding.line == directive.line ||
          finding.line == directive.line + 1) {
        suppressed = true;
        if (used != nullptr) {
          (*used)[s] = 1;
        }
        break;
      }
    }
    if (!suppressed) {
      kept.push_back(std::move(finding));
    }
  }
  return kept;
}

std::vector<Finding> run_rules(const FileInfo& info, const LexResult& lex,
                               const UnorderedDecls& decls,
                               const DeprecatedDecls& deprecated,
                               std::vector<char>* suppression_used) {
  std::vector<Finding> findings;
  rule_det1(info, lex.tokens, findings);
  rule_obs1(info, lex.tokens, findings);
  rule_mem1(info, lex.tokens, findings);
  rule_wire1(info, lex.tokens, findings);
  rule_det2(info, lex.tokens, decls, findings);
  rule_race1(info, lex.tokens, findings);
  rule_race2(info, lex.tokens, findings);
  rule_api1(info, lex.tokens, deprecated, findings);
  rule_life1(info, lex.tokens, findings);
  rule_headers(info, lex.tokens, findings);

  std::vector<Finding> kept =
      apply_suppressions(std::move(findings), lex.suppressions, suppression_used);
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return kept;
}

}  // namespace seg::lint
