#include "util/lint/dataflow.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

namespace seg::lint {

namespace {

using Tokens = std::vector<Token>;

bool macro_like(std::string_view name) {
  bool has_upper = false;
  for (const char c : name) {
    if (std::islower(static_cast<unsigned char>(c)) != 0) {
      return false;
    }
    has_upper |= std::isupper(static_cast<unsigned char>(c)) != 0;
  }
  return has_upper;
}

bool call_keyword(std::string_view id) {
  return id == "if" || id == "for" || id == "while" || id == "switch" ||
         id == "catch" || id == "return" || id == "sizeof" || id == "alignof" ||
         id == "decltype" || id == "static_cast" || id == "dynamic_cast" ||
         id == "const_cast" || id == "reinterpret_cast" || id == "noexcept" ||
         id == "assert" || id == "defined" || id == "alignas" || id == "new" ||
         id == "delete" || id == "throw" || id == "co_await" || id == "co_return";
}

bool stream_type(std::string_view id) {
  return id == "ostream" || id == "ofstream" || id == "ostringstream" ||
         id == "stringstream" || id == "fstream" || id == "iostream" ||
         id == "FILE";
}

bool implicit_stream(std::string_view id) {
  return id == "cout" || id == "cerr" || id == "clog";
}

bool printf_like(std::string_view id) {
  return id == "printf" || id == "fprintf" || id == "dprintf" ||
         id == "fputs" || id == "fwrite" || id == "puts";
}

bool growth_call(std::string_view id) {
  return id == "push_back" || id == "emplace_back" || id == "insert" ||
         id == "emplace" || id == "push_front" || id == "emplace_front";
}

bool ordered_assoc(std::string_view id) {
  return id == "map" || id == "set" || id == "multimap" || id == "multiset";
}

/// One declared parameter of the function under analysis.
struct ParamInfo {
  std::string name;
  bool is_stream = false;    ///< ostream/FILE-family type: a sink handle
  bool is_callback = false;  ///< std::function type: the visit() pattern
  bool mutable_ref = false;  ///< non-const reference: an out-param candidate
};

std::vector<ParamInfo> parse_params(const Tokens& toks, std::size_t open) {
  const std::size_t close = skip_balanced(toks, open);  // one past `)`
  std::vector<ParamInfo> params;
  ParamInfo current;
  std::string last_ident;
  bool saw_const = false;
  bool any_token = false;
  const auto flush = [&] {
    if (any_token) {
      current.name = last_ident;
      current.mutable_ref = current.mutable_ref && !saw_const;
      params.push_back(current);
    }
    current = ParamInfo{};
    last_ident.clear();
    saw_const = false;
    any_token = false;
  };
  int depth = 0;
  bool in_default = false;
  for (std::size_t i = open + 1; i + 1 < close && i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{") || is_punct(t, "<")) {
      ++depth;
    } else if (is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}") ||
               is_punct(t, ">")) {
      --depth;
    }
    if (depth == 0 && is_punct(t, ",")) {
      flush();
      in_default = false;
      continue;
    }
    if (depth == 0 && is_punct(t, "=")) {
      in_default = true;
      continue;
    }
    if (in_default) {
      continue;
    }
    any_token = true;
    if (t.kind == TokKind::kIdentifier) {
      last_ident = std::string(t.text);
      if (stream_type(t.text)) current.is_stream = true;
      if (t.text == "function") current.is_callback = true;
      if (t.text == "const") saw_const = true;
    } else if (depth == 0 && (is_punct(t, "&") || is_punct(t, "*"))) {
      current.mutable_ref = true;
    }
  }
  flush();
  return params;
}

/// Mutable per-body analysis state. Ordered containers keep the scan — and
/// therefore finding order — deterministic.
struct BodyState {
  std::map<std::string, std::string, std::less<>> taint;  // name -> provenance
  std::set<std::string, std::less<>> streams;
  std::set<std::string, std::less<>> ordered;
  std::set<std::string, std::less<>> callbacks;
  std::map<std::string, std::size_t, std::less<>> out_param_pos;
};

/// Top-level argument ranges [begin, end) of the list opening at `open`.
std::vector<std::pair<std::size_t, std::size_t>> split_args(const Tokens& toks,
                                                            std::size_t open) {
  const std::size_t close = skip_balanced(toks, open);
  std::vector<std::pair<std::size_t, std::size_t>> args;
  std::size_t begin = open + 1;
  int depth = 0;
  for (std::size_t i = open + 1; i + 1 < close && i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{") || is_punct(t, "<")) {
      ++depth;
    } else if (is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}") ||
               is_punct(t, ">")) {
      --depth;
    } else if (depth == 0 && is_punct(t, ",")) {
      args.emplace_back(begin, i);
      begin = i + 1;
    }
  }
  if (close > open + 1) {
    args.emplace_back(begin, close - 1);
  }
  return args;
}

/// The scan for one function body. In fact-collection mode (`out == nullptr`)
/// it widens `facts[r]` and flips `*changed`; in emit mode it appends R-DET3
/// findings instead (facts are frozen by then).
class BodyScan {
 public:
  BodyScan(const SymbolIndex& index, const CallGraph& graph,
           const ProjectModel& model, const UnorderedDecls& decls,
           std::size_t record_index, std::vector<FunctionFacts>& facts,
           std::vector<Finding>* out, bool* changed)
      : index_(index), graph_(graph), model_(model), decls_(decls),
        r_(record_index), facts_(facts), out_(out), changed_(changed),
        record_(index.records()[record_index]),
        toks_(model.files()[record_.file_index].lex.tokens) {}

  void run() {
    const std::vector<ParamInfo> params = parse_params(toks_, record_.param_open);
    for (std::size_t p = 0; p < params.size(); ++p) {
      if (params[p].name.empty()) continue;
      if (params[p].is_stream) state_.streams.insert(params[p].name);
      if (params[p].is_callback) state_.callbacks.insert(params[p].name);
      if (params[p].mutable_ref) state_.out_param_pos[params[p].name] = p;
    }

    bool has_packaged_task = false;
    bool has_catch_ellipsis = false;
    bool has_current_exception = false;

    const std::size_t begin = record_.body_begin + 1;
    const std::size_t end = record_.body_end > 0 ? record_.body_end - 1 : 0;
    for (std::size_t i = begin; i < end && i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != TokKind::kIdentifier) {
        continue;
      }
      if (t.text == "packaged_task") has_packaged_task = true;
      if (t.text == "current_exception") has_current_exception = true;
      if (t.text == "catch" && i + 1 < end && is_punct(toks_[i + 1], "(")) {
        has_catch_ellipsis |= catch_is_ellipsis(i + 1);
      }

      // Local sink handles: `std::ostringstream oss;` and friends.
      if (stream_type(t.text) && i + 1 < end &&
          toks_[i + 1].kind == TokKind::kIdentifier) {
        state_.streams.insert(std::string(toks_[i + 1].text));
        continue;
      }
      // Local ordered collectors: `std::map<K, V> sorted;`.
      if (ordered_assoc(t.text) && i + 1 < end && is_punct(toks_[i + 1], "<") &&
          (i == 0 || (!is_punct(toks_[i - 1], ".") && !is_punct(toks_[i - 1], "->")))) {
        const std::size_t past = skip_template_args(toks_, i + 1);
        if (past != i + 1) {
          std::size_t j = past;
          while (j < end && (is_punct(toks_[j], "&") || is_punct(toks_[j], "*") ||
                             is_id(toks_[j], "const"))) {
            ++j;
          }
          if (j < end && toks_[j].kind == TokKind::kIdentifier) {
            state_.ordered.insert(std::string(toks_[j].text));
          }
        }
        continue;
      }
      // `std::sort(keys.begin(), ...)` pins the order: the first argument's
      // container is deterministic from here on.
      if ((t.text == "sort" || t.text == "stable_sort") && i + 1 < end &&
          is_punct(toks_[i + 1], "(")) {
        const auto args = split_args(toks_, i + 1);
        if (!args.empty()) {
          for (std::size_t j = args[0].first; j < args[0].second; ++j) {
            if (toks_[j].kind == TokKind::kIdentifier) {
              state_.taint.erase(std::string(toks_[j].text));
            }
          }
        }
        continue;
      }
      if (t.text == "for" && i + 1 < end && is_punct(toks_[i + 1], "(")) {
        scan_range_for(i);
        continue;
      }
      if (t.text == "return") {
        scan_return(i, end);
        continue;
      }
      // Sink: stream insertion chain.
      if ((state_.streams.count(t.text) != 0 || implicit_stream(t.text)) &&
          i + 1 < end && is_punct(toks_[i + 1], "<<")) {
        scan_stream_chain(i, end);
        continue;
      }
      // Sink: printf-family call.
      if (printf_like(t.text) && i + 1 < end && is_punct(toks_[i + 1], "(")) {
        scan_printf(i);
        continue;
      }
      // Callback invocation: `fn(key, days)` where fn is a std::function
      // parameter — whoever passed fn sees these values.
      if (state_.callbacks.count(t.text) != 0 && i + 1 < end &&
          is_punct(toks_[i + 1], "(")) {
        scan_callback_invocation(i);
        continue;
      }
      // Growth: `target.push_back(key)` — taint flows into `target`.
      if (i + 3 < end && is_punct(toks_[i + 1], ".") &&
          toks_[i + 2].kind == TokKind::kIdentifier &&
          growth_call(toks_[i + 2].text) && is_punct(toks_[i + 3], "(")) {
        scan_growth(i);
        // fall through: `target.insert(...)` is not also a resolvable call
        continue;
      }
      // General call site: returned taint, out-param taint, callback expose.
      if (i + 1 < end && is_punct(toks_[i + 1], "(") && !call_keyword(t.text) &&
          !macro_like(t.text) && !is_function_heading(toks_, i, i + 1)) {
        scan_call(i);
      }
    }

    if (has_packaged_task || (has_catch_ellipsis && has_current_exception)) {
      if (!facts_[r_].routes_exceptions) {
        facts_[r_].routes_exceptions = true;
        mark_changed();
      }
    }
  }

 private:
  void mark_changed() {
    if (changed_ != nullptr) {
      *changed_ = true;
    }
  }

  bool catch_is_ellipsis(std::size_t open) const {
    const std::size_t close = skip_balanced(toks_, open);
    bool any = false;
    for (std::size_t j = open + 1; j + 1 < close; ++j) {
      if (toks_[j].text != "..." && toks_[j].text != ".") {
        return false;
      }
      any = true;
    }
    return any;
  }

  void add_taint(std::string_view name, const std::string& origin) {
    state_.taint.emplace(std::string(name), origin);
  }

  const std::string* tainted(std::string_view name) const {
    const auto it = state_.taint.find(name);
    return it == state_.taint.end() ? nullptr : &it->second;
  }

  void emit(std::size_t line, std::string message) {
    if (out_ != nullptr) {
      out_->push_back(Finding{record_.file, line, "R-DET3", std::move(message)});
    }
  }

  /// Taint provenance of a call expression `name(...)` at `i`, when any
  /// resolved callee taints its return; nullptr otherwise.
  const FunctionFacts* callee_return_taint(std::size_t i) const {
    if (toks_[i].kind != TokKind::kIdentifier || i + 1 >= toks_.size() ||
        !is_punct(toks_[i + 1], "(") || call_keyword(toks_[i].text) ||
        macro_like(toks_[i].text)) {
      return nullptr;
    }
    const std::size_t arity = paren_list_arity(toks_, i + 1);
    for (const std::size_t callee : graph_.resolve(toks_[i].text, arity)) {
      if (facts_[callee].taints_return) {
        return &facts_[callee];
      }
    }
    return nullptr;
  }

  void scan_range_for(std::size_t i) {
    const std::size_t close = skip_balanced(toks_, i + 1);  // one past `)`
    std::size_t colon = 0;
    int depth = 0;
    for (std::size_t j = i + 1; j < close && j < toks_.size(); ++j) {
      if (is_punct(toks_[j], "(")) {
        ++depth;
      } else if (is_punct(toks_[j], ")")) {
        --depth;
      } else if (depth == 1 && is_punct(toks_[j], ":")) {
        colon = j;
      } else if (depth == 1 && is_punct(toks_[j], ";")) {
        colon = 0;  // classic for-loop; not a range-for
      }
    }
    if (colon == 0) {
      return;
    }
    // Source: a bare unordered container (declared, aliased, or a tainted
    // local) in the range expression — same shape R-DET2 matches.
    std::string origin;
    std::string source;
    for (std::size_t j = colon + 1; j + 1 < close; ++j) {
      if (toks_[j].kind != TokKind::kIdentifier) {
        continue;
      }
      if (j + 1 < close && (is_punct(toks_[j + 1], ".") || is_punct(toks_[j + 1], "->") ||
                            is_punct(toks_[j + 1], "(") || is_punct(toks_[j + 1], "["))) {
        continue;
      }
      if (const std::string* o = tainted(toks_[j].text)) {
        origin = *o;
        source = std::string(toks_[j].text);
        break;
      }
      if (decls_.has_name(toks_[j].text) || decls_.has_alias(toks_[j].text)) {
        source = std::string(toks_[j].text);
        origin = "iteration over unordered '" + source + "'";
        break;
      }
    }
    // Bind the loop variables: `[key, days]` structured bindings, or the
    // last identifier before the colon. A loop over a clean source REBINDS
    // the names — clearing any taint a previous loop left on them (the
    // collect-sort-emit pattern reuses binding names).
    const auto bind = [&](std::string_view name) {
      if (source.empty()) {
        state_.taint.erase(std::string(name));
      } else {
        add_taint(name, origin);
      }
    };
    bool bound = false;
    for (std::size_t j = i + 2; j < colon; ++j) {
      if (is_punct(toks_[j], "[")) {
        const std::size_t bracket_close = skip_balanced(toks_, j);
        for (std::size_t k = j + 1; k + 1 < bracket_close; ++k) {
          if (toks_[k].kind == TokKind::kIdentifier) {
            bind(toks_[k].text);
            bound = true;
          }
        }
        break;
      }
    }
    if (!bound) {
      for (std::size_t j = colon; j-- > i + 2;) {
        if (toks_[j].kind == TokKind::kIdentifier) {
          bind(toks_[j].text);
          break;
        }
      }
    }
  }

  void scan_return(std::size_t i, std::size_t end) {
    for (std::size_t j = i + 1; j < end && !is_punct(toks_[j], ";"); ++j) {
      if (toks_[j].kind != TokKind::kIdentifier) {
        continue;
      }
      if (const std::string* o = tainted(toks_[j].text)) {
        if (!facts_[r_].taints_return) {
          facts_[r_].taints_return = true;
          facts_[r_].return_origin = *o;
          mark_changed();
        }
        return;
      }
      if (const FunctionFacts* callee = callee_return_taint(j)) {
        if (!facts_[r_].taints_return) {
          facts_[r_].taints_return = true;
          facts_[r_].return_origin = callee->return_origin;
          mark_changed();
        }
        return;
      }
    }
  }

  void scan_stream_chain(std::size_t i, std::size_t end) {
    const std::string sink(toks_[i].text);
    std::set<std::string, std::less<>> reported;
    int depth = 0;
    for (std::size_t j = i + 2; j < end; ++j) {
      if (is_punct(toks_[j], "(") || is_punct(toks_[j], "[") || is_punct(toks_[j], "{")) {
        ++depth;
      } else if (is_punct(toks_[j], ")") || is_punct(toks_[j], "]") ||
                 is_punct(toks_[j], "}")) {
        --depth;
        if (depth < 0) break;
      } else if (depth == 0 && is_punct(toks_[j], ";")) {
        break;
      }
      if (toks_[j].kind != TokKind::kIdentifier) {
        continue;
      }
      if (const std::string* o = tainted(toks_[j].text)) {
        if (reported.insert(std::string(toks_[j].text)).second) {
          emit(toks_[j].line,
               "unordered-iteration value '" + std::string(toks_[j].text) +
                   "' reaches output stream '" + sink + "' (" + *o +
                   "): hash-table traversal order leaks into the serialized "
                   "bytes; sort first or collect into an ordered container");
        }
      } else if (const FunctionFacts* callee = callee_return_taint(j)) {
        if (reported.insert(std::string(toks_[j].text)).second) {
          emit(toks_[j].line,
               "value returned by '" + std::string(toks_[j].text) +
                   "' reaches output stream '" + sink + "' (" +
                   callee->return_origin + "): hash-table traversal order "
                   "leaks into the serialized bytes; sort before emitting");
        }
      }
    }
  }

  void scan_printf(std::size_t i) {
    const std::string sink(toks_[i].text);
    for (const auto& [abegin, aend] : split_args(toks_, i + 1)) {
      for (std::size_t j = abegin; j < aend; ++j) {
        if (toks_[j].kind != TokKind::kIdentifier) {
          continue;
        }
        if (const std::string* o = tainted(toks_[j].text)) {
          emit(toks_[j].line,
               "unordered-iteration value '" + std::string(toks_[j].text) +
                   "' reaches " + sink + "() (" + *o +
                   "): hash-table traversal order leaks into the serialized "
                   "bytes; sort first or collect into an ordered container");
        }
      }
    }
  }

  void scan_callback_invocation(std::size_t i) {
    for (const auto& [abegin, aend] : split_args(toks_, i + 1)) {
      for (std::size_t j = abegin; j < aend; ++j) {
        if (toks_[j].kind != TokKind::kIdentifier) {
          continue;
        }
        if (const std::string* o = tainted(toks_[j].text)) {
          if (!facts_[r_].exposes_callback) {
            facts_[r_].exposes_callback = true;
            facts_[r_].callback_origin = *o;
            mark_changed();
          }
          return;
        }
      }
    }
  }

  void scan_growth(std::size_t i) {
    const std::string* origin = nullptr;
    for (const auto& [abegin, aend] : split_args(toks_, i + 3)) {
      for (std::size_t j = abegin; j < aend; ++j) {
        if (toks_[j].kind == TokKind::kIdentifier) {
          if (const std::string* o = tainted(toks_[j].text)) {
            origin = o;
            break;
          }
        }
      }
      if (origin != nullptr) break;
    }
    if (origin == nullptr) {
      return;
    }
    const std::string_view target = toks_[i].text;
    if (state_.ordered.count(target) != 0) {
      return;  // collected into an ordered container: neutralized
    }
    const auto out_it = state_.out_param_pos.find(target);
    if (out_it != state_.out_param_pos.end()) {
      auto& outs = facts_[r_].tainted_out_params;
      const bool known = std::any_of(outs.begin(), outs.end(),
                                     [&](const auto& p) { return p.first == out_it->second; });
      if (!known) {
        outs.emplace_back(out_it->second, *origin);
        mark_changed();
      }
      return;
    }
    add_taint(target, *origin);
  }

  void scan_call(std::size_t i) {
    const std::size_t arity = paren_list_arity(toks_, i + 1);
    const std::vector<std::size_t> callees = graph_.resolve(toks_[i].text, arity);
    if (callees.empty()) {
      return;
    }
    const auto args = split_args(toks_, i + 1);
    for (const std::size_t c : callees) {
      const FunctionFacts& cf = facts_[c];
      if (cf.taints_return && i >= 2 && is_punct(toks_[i - 1], "=") &&
          toks_[i - 2].kind == TokKind::kIdentifier) {
        add_taint(toks_[i - 2].text,
                  "value returned by '" + index_.records()[c].qualified_name +
                      "' (" + cf.return_origin + ")");
      }
      for (const auto& [pos, origin] : cf.tainted_out_params) {
        if (pos >= args.size()) continue;
        // Only a bare (possibly &-qualified) identifier argument receives
        // the taint; expressions are left alone.
        std::size_t j = args[pos].first;
        if (j < args[pos].second && is_punct(toks_[j], "&")) ++j;
        if (j + 1 == args[pos].second && toks_[j].kind == TokKind::kIdentifier) {
          add_taint(toks_[j].text,
                    "grown by '" + index_.records()[c].qualified_name + "' (" +
                        origin + ")");
        }
      }
      if (cf.exposes_callback) {
        scan_exposed_lambda(i, cf, index_.records()[c].qualified_name);
      }
    }
  }

  /// `visit(..., [&](const Key& key, ...) { out << key; })`: the callee
  /// hands unordered-iteration values to the lambda's parameters, so sinks
  /// inside the lambda body are R-DET3 findings.
  void scan_exposed_lambda(std::size_t call, const FunctionFacts& cf,
                           const std::string& callee_name) {
    for (const auto& [abegin, aend] : split_args(toks_, call + 1)) {
      if (abegin >= aend || !is_punct(toks_[abegin], "[")) {
        continue;
      }
      const std::size_t cap_end = skip_balanced(toks_, abegin);  // one past `]`
      if (cap_end >= aend || !is_punct(toks_[cap_end], "(")) {
        continue;
      }
      const std::vector<ParamInfo> lparams = parse_params(toks_, cap_end);
      std::set<std::string, std::less<>> exposed;
      for (const auto& p : lparams) {
        if (!p.name.empty()) {
          exposed.insert(p.name);
        }
      }
      if (exposed.empty()) {
        continue;
      }
      std::size_t body = skip_balanced(toks_, cap_end);  // one past `)`
      while (body < aend && !is_punct(toks_[body], "{")) {
        ++body;
      }
      if (body >= aend) {
        continue;
      }
      const std::size_t body_end = skip_balanced(toks_, body);
      for (std::size_t j = body + 1; j + 1 < body_end; ++j) {
        const Token& t = toks_[j];
        if (t.kind != TokKind::kIdentifier) {
          continue;
        }
        const bool is_sink =
            ((state_.streams.count(t.text) != 0 || implicit_stream(t.text)) &&
             j + 1 < body_end && is_punct(toks_[j + 1], "<<")) ||
            (printf_like(t.text) && j + 1 < body_end && is_punct(toks_[j + 1], "("));
        if (!is_sink) {
          continue;
        }
        for (std::size_t k = j + 1; k + 1 < body_end && !is_punct(toks_[k], ";"); ++k) {
          if (toks_[k].kind == TokKind::kIdentifier &&
              exposed.count(toks_[k].text) != 0) {
            emit(toks_[k].line,
                 "unordered-iteration value '" + std::string(toks_[k].text) +
                     "' (via callback from '" + callee_name + "'; " +
                     cf.callback_origin + ") reaches a serialization sink: "
                     "sort first or collect into an ordered container");
            j = k;  // one finding per sink statement
            break;
          }
        }
      }
    }
  }

  const SymbolIndex& index_;
  const CallGraph& graph_;
  const ProjectModel& model_;
  const UnorderedDecls& decls_;
  const std::size_t r_;
  std::vector<FunctionFacts>& facts_;
  std::vector<Finding>* out_;
  bool* changed_;
  const SymbolRecord& record_;
  const Tokens& toks_;
  BodyState state_;
};

bool analyzable(const SymbolRecord& record, const ProjectModel& model) {
  return record.has_body && record.file_index < model.files().size() &&
         record.body_end > record.body_begin;
}

}  // namespace

DataflowResult run_dataflow(const SymbolIndex& index, const CallGraph& graph,
                            const ProjectModel& model,
                            const std::vector<UnorderedDecls>& closure_decls) {
  DataflowResult result;
  const auto& records = index.records();
  result.facts.resize(records.size());

  // Facts only widen and origins are set once, so the fixed point is
  // reached in at most (longest acyclic call chain) rounds; the cap is a
  // recursion backstop.
  constexpr std::size_t kMaxRounds = 8;
  for (std::size_t round = 0; round < kMaxRounds; ++round) {
    bool changed = false;
    for (std::size_t r = 0; r < records.size(); ++r) {
      if (!analyzable(records[r], model)) continue;
      BodyScan(index, graph, model, closure_decls[records[r].file_index], r,
               result.facts, nullptr, &changed)
          .run();
    }
    // Exception routing propagates through plain calls: a thread body that
    // just calls worker_loop() is safe when worker_loop routes.
    for (std::size_t r = 0; r < records.size(); ++r) {
      if (result.facts[r].routes_exceptions) continue;
      for (const std::size_t callee : graph.callees()[r]) {
        if (result.facts[callee].routes_exceptions) {
          result.facts[r].routes_exceptions = true;
          changed = true;
          break;
        }
      }
    }
    if (!changed) {
      break;
    }
  }

  for (std::size_t r = 0; r < records.size(); ++r) {
    if (!analyzable(records[r], model)) continue;
    BodyScan(index, graph, model, closure_decls[records[r].file_index], r,
             result.facts, &result.det3, nullptr)
        .run();
  }
  std::sort(result.det3.begin(), result.det3.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.message < b.message;
            });
  result.det3.erase(std::unique(result.det3.begin(), result.det3.end(),
                                [](const Finding& a, const Finding& b) {
                                  return a.file == b.file && a.line == b.line &&
                                         a.message == b.message;
                                }),
                    result.det3.end());
  return result;
}

std::vector<Finding> check_thread_exceptions(const SymbolIndex& index,
                                             const CallGraph& graph,
                                             const ProjectModel& model,
                                             const DataflowResult& flow) {
  // Names declared anywhere as vector<...thread...>: emplacing into one is
  // a thread launch site even when the vector is a member (workers_).
  std::vector<std::string> thread_vectors;
  for (const auto& file : model.files()) {
    const auto& toks = file.lex.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!is_id(toks[i], "vector") || !is_punct(toks[i + 1], "<")) {
        continue;
      }
      const std::size_t past = skip_template_args(toks, i + 1);
      if (past == i + 1) {
        continue;
      }
      bool holds_thread = false;
      for (std::size_t j = i + 2; j + 1 < past; ++j) {
        holds_thread |= is_id(toks[j], "thread") || is_id(toks[j], "jthread");
      }
      if (!holds_thread) {
        continue;
      }
      std::size_t j = past;
      while (j < toks.size() && (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
                                 is_id(toks[j], "const"))) {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == TokKind::kIdentifier &&
          std::find(thread_vectors.begin(), thread_vectors.end(), toks[j].text) ==
              thread_vectors.end()) {
        thread_vectors.emplace_back(toks[j].text);
      }
    }
  }

  const auto routes = [&](std::string_view name) {
    // Unresolvable names (library calls) stay silent; resolvable ones must
    // have at least one routing definition.
    const auto targets = graph.resolve(name, static_cast<std::size_t>(-1));
    if (targets.empty()) {
      return true;
    }
    return std::any_of(targets.begin(), targets.end(), [&](std::size_t t) {
      return flow.facts[t].routes_exceptions;
    });
  };

  const auto lambda_routes = [&](const std::vector<Token>& toks, std::size_t begin,
                                 std::size_t end) {
    bool has_packaged_task = false;
    bool has_catch_ellipsis = false;
    bool has_current_exception = false;
    bool delegates = false;
    for (std::size_t j = begin; j < end; ++j) {
      if (toks[j].kind != TokKind::kIdentifier) continue;
      if (toks[j].text == "packaged_task") has_packaged_task = true;
      if (toks[j].text == "current_exception") has_current_exception = true;
      if (toks[j].text == "catch" && j + 1 < end && is_punct(toks[j + 1], "(")) {
        const std::size_t close = skip_balanced(toks, j + 1);
        bool ellipsis = close > j + 2;
        for (std::size_t k = j + 2; k + 1 < close; ++k) {
          ellipsis &= toks[k].text == "..." || toks[k].text == ".";
        }
        has_catch_ellipsis |= ellipsis;
      }
      if (j + 1 < end && is_punct(toks[j + 1], "(") && !call_keyword(toks[j].text) &&
          !macro_like(toks[j].text)) {
        const auto targets = graph.resolve(toks[j].text, static_cast<std::size_t>(-1));
        delegates |= std::any_of(targets.begin(), targets.end(), [&](std::size_t t) {
          return flow.facts[t].routes_exceptions;
        });
      }
    }
    return has_packaged_task || (has_catch_ellipsis && has_current_exception) ||
           delegates;
  };

  std::vector<Finding> findings;
  const auto check_site = [&](const std::vector<Token>& toks, std::size_t open,
                              const std::string& file, std::size_t line) {
    const auto args = split_args(toks, open);
    if (args.empty()) {
      return;
    }
    std::size_t j = args[0].first;
    if (j < args[0].second && is_punct(toks[j], "[")) {
      // Inline lambda body.
      std::size_t body = skip_balanced(toks, j);  // past `]`
      if (body < args[0].second && is_punct(toks[body], "(")) {
        body = skip_balanced(toks, body);
      }
      while (body < args[0].second && !is_punct(toks[body], "{")) {
        ++body;
      }
      if (body >= args[0].second) {
        return;
      }
      const std::size_t body_end = skip_balanced(toks, body);
      if (!lambda_routes(toks, body + 1, body_end > 0 ? body_end - 1 : 0)) {
        findings.push_back(Finding{
            file, line, "R-EXC1",
            "thread body does not route exceptions to the owner: wrap the "
            "work in std::packaged_task, or catch (...) and hand the "
            "std::current_exception over — an exception escaping a thread "
            "calls std::terminate"});
      }
      return;
    }
    // Named entry point (possibly &Class::method): judge the last
    // identifier of the first argument.
    std::string_view name;
    for (std::size_t k = args[0].first; k < args[0].second; ++k) {
      if (toks[k].kind == TokKind::kIdentifier) {
        name = toks[k].text;
      }
    }
    if (!name.empty() && !routes(name)) {
      findings.push_back(Finding{
          file, line, "R-EXC1",
          "thread entry point '" + std::string(name) + "' does not route "
          "exceptions to the owner (no std::packaged_task and no catch (...) "
          "/ std::current_exception on any path) — an exception escaping a "
          "thread calls std::terminate"});
    }
  };

  const auto& records = index.records();
  for (std::size_t r = 0; r < records.size(); ++r) {
    const SymbolRecord& record = records[r];
    if (!analyzable(record, model)) continue;
    const auto& toks = model.files()[record.file_index].lex.tokens;
    const std::size_t end = record.body_end - 1;
    for (std::size_t i = record.body_begin + 1; i < end && i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdentifier) {
        continue;
      }
      if (is_id(toks[i], "thread")) {
        // `std::thread t(...)` or a temporary `std::thread(...)`.
        if (i + 1 < end && is_punct(toks[i + 1], "(")) {
          check_site(toks, i + 1, record.file, toks[i].line);
        } else if (i + 2 < end && toks[i + 1].kind == TokKind::kIdentifier &&
                   is_punct(toks[i + 2], "(")) {
          check_site(toks, i + 2, record.file, toks[i].line);
        }
        continue;
      }
      if (std::find(thread_vectors.begin(), thread_vectors.end(), toks[i].text) !=
              thread_vectors.end() &&
          i + 3 < end && is_punct(toks[i + 1], ".") &&
          (is_id(toks[i + 2], "emplace_back") || is_id(toks[i + 2], "push_back")) &&
          is_punct(toks[i + 3], "(")) {
        check_site(toks, i + 3, record.file, toks[i].line);
      }
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.message < b.message;
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.message == b.message;
                             }),
                 findings.end());
  return findings;
}

}  // namespace seg::lint
