#include "util/lint/report.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <ostream>
#include <stdexcept>

namespace seg::lint {

namespace {

constexpr char kKeySep = '\x1f';

constexpr std::array<std::string_view, 5> kProjectRoots = {
    "src/", "tools/", "bench/", "tests/", "examples/",
};

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string_view rule_description(std::string_view rule) {
  if (rule == "R-DET1") return "no ambient time or randomness in pipeline code";
  if (rule == "R-DET2") return "no unordered-container iteration on emission paths";
  if (rule == "R-DET3") return "no unordered-iteration values reaching serialization sinks";
  if (rule == "R-RACE1") return "no std::vector<bool> (racy packed-bit proxy)";
  if (rule == "R-RACE2") return "no shared-capture growth inside parallel lambdas";
  if (rule == "R-HDR1") return "headers must start with #pragma once";
  if (rule == "R-HDR2") return "no using namespace at header scope";
  if (rule == "R-API1") return "no calls to seg-deprecated entry points";
  if (rule == "R-ARCH1") return "include targets must respect layers.toml layering";
  if (rule == "R-ARCH2") return "the quoted-include graph must stay acyclic";
  if (rule == "R-ODR1") return "one definition per external symbol across TUs";
  if (rule == "R-LIFE1") return "no views or references escaping local storage";
  if (rule == "R-OBS1") return "no raw timing primitives outside the obs layer";
  if (rule == "R-MEM1") return "no raw mapping syscalls outside util::MmapFile";
  if (rule == "R-WIRE1") return "raw wire-byte access stays inside ByteCursor";
  if (rule == "R-EXC1") return "thread bodies must route exceptions to their owner";
  if (rule == "R-SUP1") return "suppression directives must cover a live finding";
  return "seg-lint diagnostic";
}

// --- minimal JSON reader (objects / arrays / strings / numbers / literals),
// just enough to parse write_json's own output back in. ---------------------

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of document");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    if (!at_end() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          fail("dangling escape");
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
            }
            unsigned value = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = text_[pos_++];
              value <<= 4;
              if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // Only the control-plane escapes write_json emits matter here.
            out += static_cast<char>(value & 0xff);
            break;
          }
          default: out += esc;
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) {
      fail("unterminated string");
    }
    ++pos_;  // closing quote
    return out;
  }

  // Parses and discards any value.
  void skip_value() {
    const char c = peek();
    if (c == '"') {
      parse_string();
    } else if (c == '{') {
      ++pos_;
      if (!consume('}')) {
        do {
          parse_string();
          expect(':');
          skip_value();
        } while (consume(','));
        expect('}');
      }
    } else if (c == '[') {
      ++pos_;
      if (!consume(']')) {
        do {
          skip_value();
        } while (consume(','));
        expect(']');
      }
    } else {
      // number / true / false / null
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
              text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.')) {
        ++pos_;
      }
    }
  }

  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("baseline JSON: " + what + " at offset " +
                             std::to_string(pos_));
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string normalize_path(std::string_view path) {
  std::string p(path);
  std::replace(p.begin(), p.end(), '\\', '/');
  std::size_t best = std::string::npos;
  for (const auto root : kProjectRoots) {
    for (std::size_t at = p.find(root); at != std::string::npos;
         at = p.find(root, at + 1)) {
      if (at == 0 || p[at - 1] == '/') {
        best = std::min(best, at);
        break;  // earliest occurrence of this root is enough
      }
    }
  }
  return best == std::string::npos ? p : p.substr(best);
}

std::string finding_key(const Finding& finding) {
  std::string key = normalize_path(finding.file);
  key += kKeySep;
  key += finding.rule;
  key += kKeySep;
  key += finding.message;
  return key;
}

void write_text(std::ostream& out, const std::vector<Finding>& findings) {
  for (const auto& finding : findings) {
    out << finding.file << ":" << finding.line << ": [" << finding.rule << "] "
        << finding.message << "\n";
  }
}

void write_json(std::ostream& out, const std::vector<Finding>& findings) {
  out << "{\n  \"version\": 1,\n  \"tool\": \"seg-lint\",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& finding = findings[i];
    out << (i == 0 ? "" : ",") << "\n    {\"file\": \""
        << json_escape(normalize_path(finding.file)) << "\", \"line\": "
        << finding.line << ", \"rule\": \"" << json_escape(finding.rule)
        << "\", \"message\": \"" << json_escape(finding.message) << "\"}";
  }
  out << (findings.empty() ? "" : "\n  ") << "]\n}\n";
}

void write_sarif(std::ostream& out, const std::vector<Finding>& findings) {
  // Rule metadata: each distinct rule id once, in sorted order.
  std::map<std::string, std::string_view> rules;
  for (const auto& finding : findings) {
    rules.emplace(finding.rule, rule_description(finding.rule));
  }

  out << "{\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"seg-lint\",\n"
      << "          \"version\": \"3.0.0\",\n"
      << "          \"informationUri\": \"docs/static-analysis.md\",\n"
      << "          \"rules\": [";
  std::size_t rule_index = 0;
  for (const auto& [id, description] : rules) {
    out << (rule_index++ == 0 ? "" : ",") << "\n            {\"id\": \""
        << json_escape(id) << "\", \"shortDescription\": {\"text\": \""
        << json_escape(description) << "\"}}";
  }
  out << (rules.empty() ? "" : "\n          ") << "]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& finding = findings[i];
    out << (i == 0 ? "" : ",") << "\n        {\n"
        << "          \"ruleId\": \"" << json_escape(finding.rule) << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << json_escape(finding.message)
        << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
        << json_escape(normalize_path(finding.file))
        << "\"}, \"region\": {\"startLine\": "
        << std::max<std::size_t>(finding.line, 1) << "}}}\n"
        << "          ]\n"
        << "        }";
  }
  out << (findings.empty() ? "" : "\n      ") << "]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
}

std::vector<std::string> load_baseline_keys(std::string_view json_text) {
  JsonReader reader(json_text);
  std::vector<std::string> keys;
  reader.expect('{');
  if (!reader.consume('}')) {
    do {
      const std::string field = reader.parse_string();
      reader.expect(':');
      if (field != "findings") {
        reader.skip_value();
        continue;
      }
      reader.expect('[');
      if (reader.consume(']')) {
        continue;
      }
      do {
        Finding finding;
        reader.expect('{');
        if (!reader.consume('}')) {
          do {
            const std::string name = reader.parse_string();
            reader.expect(':');
            if (name == "file") {
              finding.file = reader.parse_string();
            } else if (name == "rule") {
              finding.rule = reader.parse_string();
            } else if (name == "message") {
              finding.message = reader.parse_string();
            } else {
              reader.skip_value();
            }
          } while (reader.consume(','));
          reader.expect('}');
        }
        if (finding.file.empty() || finding.rule.empty()) {
          reader.fail("finding entry missing \"file\" or \"rule\"");
        }
        keys.push_back(finding_key(finding));
      } while (reader.consume(','));
      reader.expect(']');
    } while (reader.consume(','));
    reader.expect('}');
  }
  return keys;
}

std::vector<Finding> subtract_baseline(std::vector<Finding> findings,
                                       const std::vector<std::string>& baseline_keys) {
  std::map<std::string, std::size_t> budget;
  for (const auto& key : baseline_keys) {
    ++budget[key];
  }
  std::vector<Finding> fresh;
  for (auto& finding : findings) {
    const auto it = budget.find(finding_key(finding));
    if (it != budget.end() && it->second > 0) {
      --it->second;
      continue;
    }
    fresh.push_back(std::move(finding));
  }
  return fresh;
}

}  // namespace seg::lint
