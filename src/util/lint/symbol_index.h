// Cross-TU symbol index for seg-lint v2.
//
// Built from the project model's token streams (no name lookup, no
// preprocessing): a scope-tracking pass records every namespace, class, and
// free/member function declaration or definition with its qualified name,
// arity, normalized parameter signature, and — for definitions — a body
// token fingerprint. On top of the index:
//
//   R-ODR1  the one-definition rule across translation units:
//           (a) the same external symbol defined with a body in two or more
//               .cpp files ("multiple definition");
//           (b) an inline (or implicitly inline: class-member, template,
//               constexpr) function defined in several places with
//               *diverging* bodies — identical token sequences are legal,
//               divergence is undefined behavior;
//           (c) a non-inline function defined in a header that two or more
//               translation units include ("mark it inline").
//
// The index also aggregates every `// seg-deprecated` tag in the project,
// which upgrades R-API1 from "headers the caller happens to include" to
// whole-program resolution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/lint/project_model.h"

namespace seg::lint {

/// One function declaration or definition found by the scope scanner.
struct SymbolRecord {
  std::string qualified_name;  ///< e.g. "seg::graph::NameCache::find"
  std::string name;            ///< last component
  std::size_t arity = 0;
  std::string signature;       ///< normalized parameter types (names stripped)
  std::string file;
  std::size_t line = 0;
  bool has_body = false;
  /// inline keyword, constexpr, template, or defined inside a class body —
  /// anything the language treats as inline for ODR purposes.
  bool is_inline = false;
  /// static or anonymous-namespace: internal linkage, exempt from cross-TU
  /// ODR concerns.
  bool internal = false;
  bool in_header = false;
  /// FNV-1a fingerprint of the definition's body tokens (0 when !has_body).
  std::uint64_t body_hash = 0;
};

class SymbolIndex {
 public:
  /// Scans every file of the model. Deterministic: files are visited in the
  /// model's sorted order and records keep discovery order.
  static SymbolIndex build(const ProjectModel& model);

  const std::vector<SymbolRecord>& records() const { return records_; }

  /// Project-wide deprecated entry points (union of every file's
  /// `// seg-deprecated` tags), for symbol-index-backed R-API1.
  const DeprecatedDecls& deprecated() const { return deprecated_; }

  /// Exposed for tests: scans one file's tokens into `records_`.
  void add_file(const ProjectFile& file);

 private:
  std::vector<SymbolRecord> records_;
  DeprecatedDecls deprecated_;
};

/// R-ODR1 over the index (see header comment). `model` supplies the include
/// graph for case (c) and per-file suppressions.
std::vector<Finding> check_odr(const SymbolIndex& index, const ProjectModel& model);

}  // namespace seg::lint
