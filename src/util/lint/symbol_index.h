// Cross-TU symbol index for seg-lint v2.
//
// Built from the project model's token streams (no name lookup, no
// preprocessing): a scope-tracking pass records every namespace, class, and
// free/member function declaration or definition with its qualified name,
// arity, normalized parameter signature, and — for definitions — a body
// token fingerprint. On top of the index:
//
//   R-ODR1  the one-definition rule across translation units:
//           (a) the same external symbol defined with a body in two or more
//               .cpp files ("multiple definition");
//           (b) an inline (or implicitly inline: class-member, template,
//               constexpr) function defined in several places with
//               *diverging* bodies — identical token sequences are legal,
//               divergence is undefined behavior;
//           (c) a non-inline function defined in a header that two or more
//               translation units include ("mark it inline").
//
// The index also aggregates every `// seg-deprecated` tag in the project,
// which upgrades R-API1 from "headers the caller happens to include" to
// whole-program resolution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/lint/project_model.h"

namespace seg::lint {

/// One function declaration or definition found by the scope scanner.
struct SymbolRecord {
  std::string qualified_name;  ///< e.g. "seg::graph::NameCache::find"
  std::string name;            ///< last component
  std::size_t arity = 0;
  std::string signature;       ///< normalized parameter types (names stripped)
  std::string file;
  std::size_t line = 0;
  bool has_body = false;
  /// inline keyword, constexpr, template, or defined inside a class body —
  /// anything the language treats as inline for ODR purposes.
  bool is_inline = false;
  /// static or anonymous-namespace: internal linkage, exempt from cross-TU
  /// ODR concerns.
  bool internal = false;
  bool in_header = false;
  /// FNV-1a fingerprint of the definition's body tokens (0 when !has_body).
  std::uint64_t body_hash = 0;
  /// Index of the owning file in the project model (npos for records added
  /// through the bare test entry point).
  std::size_t file_index = static_cast<std::size_t>(-1);
  /// Token index of the parameter list's `(` in the owning file's stream.
  std::size_t param_open = 0;
  /// Token range of the definition body: `body_begin` points at the `{`,
  /// `body_end` one past the matching `}`. Both 0 when !has_body. These let
  /// the call graph and dataflow passes re-enter the body without re-lexing.
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

class SymbolIndex {
 public:
  /// Scans every file of the model. Deterministic: files are visited in the
  /// model's sorted order and records keep discovery order.
  static SymbolIndex build(const ProjectModel& model);

  const std::vector<SymbolRecord>& records() const { return records_; }

  /// Project-wide deprecated entry points (union of every file's
  /// `// seg-deprecated` tags), for symbol-index-backed R-API1.
  const DeprecatedDecls& deprecated() const { return deprecated_; }

  /// Exposed for tests: scans one file's tokens into `records_`.
  /// `file_index` is the file's position in the owning model (npos when the
  /// caller has no model).
  void add_file(const ProjectFile& file,
                std::size_t file_index = static_cast<std::size_t>(-1));

  /// Reuses a cached per-file scan (analysis_cache.h): appends `records`
  /// with file/file_index patched to this model's view, and merges the
  /// file's deprecated-tag contribution.
  void add_cached(const std::vector<SymbolRecord>& records,
                  const std::vector<DeprecatedDecls::Decl>& deprecated,
                  std::size_t file_index, const std::string& path);

 private:
  std::vector<SymbolRecord> records_;
  DeprecatedDecls deprecated_;
};

/// R-ODR1 over the index (see header comment). `model` supplies the include
/// graph for case (c) and per-file suppressions. When `usage` is non-null,
/// suppressions that drop a finding are marked used (stale-suppression
/// detection).
std::vector<Finding> check_odr(const SymbolIndex& index, const ProjectModel& model,
                               SuppressionUsage* usage = nullptr);

}  // namespace seg::lint
