// Lightweight C++ lexer for seg-lint.
//
// Produces a token stream with line numbers, with comments and string/char
// literals stripped so rules never fire on text inside literals. Comment
// text is scanned for seg-lint suppression directives before being dropped:
//
//   // seg-lint: allow(R-DET2)            suppress on this line and the next
//   // seg-lint: allow-file(R-DET2)       suppress for the whole file
//   // seg-lint: allow(R-DET2, R-RACE2)   several rules at once
//
// Comments are also scanned for the `// seg-deprecated` marker, which tags
// the declaration on the following line as a deprecated entry point for
// rule R-API1 (see rules.h).
//
// This is not a full C++ front end — no preprocessing, no name lookup. It
// is exactly enough structure for the project-contract rules in rules.h to
// pattern-match deterministically.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace seg::lint {

enum class TokKind {
  kIdentifier,  // identifiers and keywords
  kNumber,
  kPunct,  // operators and punctuation; multi-char operators are one token
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string_view text;  // view into the lexed source
  std::size_t line = 0;   // 1-based
};

struct Suppression {
  std::size_t line = 0;    // line the directive appears on
  std::string rule;        // e.g. "R-DET2"
  bool whole_file = false;  // allow-file(...) form
};

/// One `#include` directive, extracted during lexing so directives inside
/// comments or string literals are never counted (the whole-program include
/// graph in project_model.h is built from these). Line-continuation
/// backslashes between `#`, `include`, and the target are handled.
struct IncludeDirective {
  std::string target;   // path between the quotes / angle brackets
  std::size_t line = 0;  // line of the `#`
  bool quoted = false;   // "..." (project include) vs <...> (system)
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  /// Lines carrying a `seg-deprecated` marker comment; the declaration
  /// that follows each marker is a deprecated entry point (R-API1).
  std::vector<std::size_t> deprecated_markers;
  /// #include directives in order of appearance.
  std::vector<IncludeDirective> includes;
  std::size_t line_count = 0;
};

/// Lexes `source`. Token string_views point into `source`, which must
/// outlive the result.
LexResult lex(std::string_view source);

}  // namespace seg::lint
