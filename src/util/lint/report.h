// seg-lint output and baseline layer.
//
// Three serializations of a finding list:
//
//   text   the classic `file:line: [RULE] message` lines;
//   json   a versioned machine-readable document, also the on-disk format
//          of the checked-in baseline (tools/lint-baseline.json);
//   sarif  SARIF 2.1.0 for code-scanning UIs and CI artifact upload.
//
// Baselines identify findings by a *line-free* key — normalized project
// path + rule + message — so editing code above a known finding does not
// churn the baseline, and findings from an absolute ctest path compare
// equal to the same findings from a `git archive` scratch tree
// (--diff-base). Subtraction is multiset-style: three baselined R-DET2
// findings in a file absorb exactly three current ones.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/lint/rules.h"

namespace seg::lint {

/// `path` reduced to its project-relative suffix: everything before the
/// first `src/`, `tools/`, `bench/`, `tests/`, or `examples/` component is
/// dropped (backslashes normalized first). Paths containing none of those
/// roots come back unchanged.
std::string normalize_path(std::string_view path);

/// Stable baseline identity of a finding: normalized path, rule, and
/// message joined with an unprintable separator. Line numbers are
/// deliberately excluded (see file banner).
std::string finding_key(const Finding& finding);

void write_text(std::ostream& out, const std::vector<Finding>& findings);
void write_json(std::ostream& out, const std::vector<Finding>& findings);
void write_sarif(std::ostream& out, const std::vector<Finding>& findings);

/// Parses a findings/baseline JSON document (the shape write_json emits)
/// and returns the finding keys, one per entry. Throws std::runtime_error
/// with a position-bearing message on malformed input.
std::vector<std::string> load_baseline_keys(std::string_view json_text);

/// Multiset subtraction: drops each finding matched by a not-yet-consumed
/// baseline key; what remains is "new relative to the baseline".
std::vector<Finding> subtract_baseline(std::vector<Finding> findings,
                                       const std::vector<std::string>& baseline_keys);

}  // namespace seg::lint
