#include "util/lint/lexer.h"

#include <algorithm>
#include <cctype>

namespace seg::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Multi-character operators lexed as a single token, longest first. Keeping
// `=` distinct from `==`/`+=`/... lets rules treat a bare `=` as assignment.
constexpr std::string_view kOperators[] = {
    "<<=", ">>=", "...", "::", "->", "++", "--", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=",
};

// Parses suppression directives out of one comment's text.
void scan_comment(std::string_view comment, std::size_t line,
                  std::vector<Suppression>& out) {
  const auto find_directive = [&](std::string_view marker, bool whole_file) {
    std::size_t pos = 0;
    while ((pos = comment.find(marker, pos)) != std::string_view::npos) {
      const std::size_t open = pos + marker.size() - 1;  // marker ends with '('
      const std::size_t close = comment.find(')', open);
      if (close == std::string_view::npos) {
        return;
      }
      std::string_view rules = comment.substr(open + 1, close - open - 1);
      while (!rules.empty()) {
        const std::size_t comma = rules.find(',');
        std::string_view one = rules.substr(0, comma);
        while (!one.empty() && one.front() == ' ') one.remove_prefix(1);
        while (!one.empty() && one.back() == ' ') one.remove_suffix(1);
        if (!one.empty()) {
          out.push_back(Suppression{line, std::string(one), whole_file});
        }
        if (comma == std::string_view::npos) {
          break;
        }
        rules.remove_prefix(comma + 1);
      }
      pos = close;
    }
  };
  // The two markers are distinct strings ("allow(" vs "allow-file("), so
  // scanning both never double-counts a directive.
  find_directive("seg-lint: allow-file(", /*whole_file=*/true);
  find_directive("seg-lint: allow(", /*whole_file=*/false);
}

// True when a comment is exactly the `seg-deprecated` marker. Prose that
// merely mentions the marker (like this sentence) must not tag the next
// declaration, so the comment body has to be the marker and nothing else.
bool is_deprecated_marker(std::string_view comment) {
  if (comment.substr(0, 2) == "//" || comment.substr(0, 2) == "/*") {
    comment.remove_prefix(2);
  }
  if (comment.size() >= 2 && comment.substr(comment.size() - 2) == "*/") {
    comment.remove_suffix(2);
  }
  while (!comment.empty() && std::isspace(static_cast<unsigned char>(comment.front()))) {
    comment.remove_prefix(1);
  }
  while (!comment.empty() && std::isspace(static_cast<unsigned char>(comment.back()))) {
    comment.remove_suffix(1);
  }
  return comment == "seg-deprecated";
}

// Parses the `#include` directive whose `#` sits at `hash` (directives that
// reach here are already outside comments and literals). Tolerates
// line-continuation backslashes between the `#`, the `include` keyword, and
// the target, as macro-heavy headers produce. Returns false when the `#`
// introduces some other directive.
bool scan_include_directive(std::string_view source, std::size_t hash,
                            std::size_t line, IncludeDirective& out) {
  const std::size_t n = source.size();
  std::size_t j = hash + 1;
  const auto skip_blank = [&] {
    while (j < n) {
      if (source[j] == ' ' || source[j] == '\t') {
        ++j;
      } else if (source[j] == '\\' && j + 1 < n &&
                 (source[j + 1] == '\n' ||
                  (source[j + 1] == '\r' && j + 2 < n && source[j + 2] == '\n'))) {
        j += source[j + 1] == '\n' ? 2 : 3;
      } else {
        break;
      }
    }
  };
  skip_blank();
  constexpr std::string_view kInclude = "include";
  if (source.substr(j, kInclude.size()) != kInclude) {
    return false;
  }
  j += kInclude.size();
  if (j < n && is_ident_char(source[j])) {
    return false;  // e.g. `#include_next`
  }
  skip_blank();
  if (j >= n || (source[j] != '"' && source[j] != '<')) {
    return false;
  }
  const char close = source[j] == '"' ? '"' : '>';
  const std::size_t start = j + 1;
  const std::size_t end = source.find(close, start);
  if (end == std::string_view::npos || source.substr(start, end - start).find('\n') !=
                                           std::string_view::npos) {
    return false;
  }
  out.target = std::string(source.substr(start, end - start));
  out.line = line;
  out.quoted = close == '"';
  return true;
}

// Length of the raw-string prefix (`R`, `LR`, `uR`, `UR`, `u8R`) starting at
// `i` when `i` begins a raw string literal, else 0.
std::size_t raw_string_prefix(std::string_view source, std::size_t i) {
  for (const std::string_view prefix : {"R", "LR", "uR", "UR", "u8R"}) {
    if (source.substr(i, prefix.size()) == prefix &&
        i + prefix.size() < source.size() && source[i + prefix.size()] == '"') {
      return prefix.size();
    }
  }
  return 0;
}

}  // namespace

LexResult lex(std::string_view source) {
  LexResult result;
  std::size_t i = 0;
  std::size_t line = 1;
  const std::size_t n = source.size();

  const auto advance_lines = [&](std::string_view text) {
    line += static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n'));
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Line-continuation backslash: whitespace, not an operator. Without
    // this, `#define FOO \` would inject a stray `\` token and split macro
    // bodies mid-directive.
    if (c == '\\' && i + 1 < n &&
        (source[i + 1] == '\n' ||
         (source[i + 1] == '\r' && i + 2 < n && source[i + 2] == '\n'))) {
      ++line;
      i += source[i + 1] == '\n' ? 2 : 3;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      const std::size_t end = source.find('\n', i);
      const std::size_t stop = end == std::string_view::npos ? n : end;
      const std::string_view body = source.substr(i, stop - i);
      scan_comment(body, line, result.suppressions);
      if (is_deprecated_marker(body)) {
        result.deprecated_markers.push_back(line);
      }
      i = stop;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const std::size_t end = source.find("*/", i + 2);
      const std::size_t stop = end == std::string_view::npos ? n : end + 2;
      const std::string_view body = source.substr(i, stop - i);
      scan_comment(body, line, result.suppressions);
      if (is_deprecated_marker(body)) {
        result.deprecated_markers.push_back(line);
      }
      advance_lines(body);
      i = stop;
      continue;
    }
    // Raw string literal: [L|u|U|u8]R"delim(...)delim". The delimiter may be
    // empty but may not contain parens, spaces, or backslashes; an
    // unterminated or malformed opener falls through to ordinary lexing.
    if (const std::size_t prefix = raw_string_prefix(source, i); prefix != 0) {
      const std::size_t quote = i + prefix;
      const std::size_t open = source.find('(', quote + 1);
      const bool delim_ok =
          open != std::string_view::npos && open - quote - 1 <= 16 &&
          source.substr(quote + 1, open - quote - 1).find_first_of(" \\)\"\n") ==
              std::string_view::npos;
      if (delim_ok) {
        const std::string closer =
            ")" + std::string(source.substr(quote + 1, open - quote - 1)) + "\"";
        const std::size_t end = source.find(closer, open + 1);
        const std::size_t stop =
            end == std::string_view::npos ? n : end + closer.size();
        advance_lines(source.substr(i, stop - i));
        i = stop;
        continue;
      }
    }
    // String / char literal (with escapes).
    if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      while (j < n && source[j] != c) {
        if (source[j] == '\\' && j + 1 < n) {
          ++j;
        }
        if (source[j] == '\n') {
          ++line;
        }
        ++j;
      }
      i = j < n ? j + 1 : n;
      continue;
    }
    // #include extraction (tokenization continues normally afterwards, so
    // the token stream is unaffected; the quoted target is skipped by the
    // string-literal handler below).
    if (c == '#') {
      IncludeDirective directive;
      if (scan_include_directive(source, i, line, directive)) {
        result.includes.push_back(std::move(directive));
      }
    }
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && is_ident_char(source[j])) {
        ++j;
      }
      result.tokens.push_back(
          Token{TokKind::kIdentifier, source.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i + 1;
      while (j < n && (is_ident_char(source[j]) || source[j] == '.' ||
                       ((source[j] == '+' || source[j] == '-') &&
                        (source[j - 1] == 'e' || source[j - 1] == 'E')) ||
                       // Digit separator (1'000'000): part of the number, not
                       // the start of a char literal that would swallow the
                       // tokens after it.
                       (source[j] == '\'' && j + 1 < n &&
                        std::isalnum(static_cast<unsigned char>(source[j + 1])) != 0))) {
        ++j;
      }
      result.tokens.push_back(
          Token{TokKind::kNumber, source.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Operators, longest match first.
    bool matched = false;
    for (const auto op : kOperators) {
      if (source.substr(i, op.size()) == op) {
        result.tokens.push_back(Token{TokKind::kPunct, source.substr(i, op.size()), line});
        i += op.size();
        matched = true;
        break;
      }
    }
    if (matched) {
      continue;
    }
    result.tokens.push_back(Token{TokKind::kPunct, source.substr(i, 1), line});
    ++i;
  }
  result.line_count = line;
  return result;
}

}  // namespace seg::lint
