// Content-addressed cache for seg-lint's per-file analysis results.
//
// `seg_lint --diff-base <ref>` lints the tree twice: once for the working
// tree and once for a `git archive` snapshot of the base ref. Almost every
// file is byte-identical between the two, so the second pass used to redo
// the symbol-index scan and the whole per-file rule pass for nothing. The
// cache keys both by FNV-1a content hashes:
//
//   symbols   keyed by the file's text hash alone — the scope scan is a
//             pure function of the bytes. Records store token indices
//             (param_open, body range), which stay valid for any lex of
//             identical text; the per-model file index is patched on reuse.
//   rules     keyed by text hash combined with everything else run_rules
//             reads: the include-closure's unordered declarations, the
//             project-wide deprecated set, and the FileInfo classification.
//
// Interprocedural results (call graph, dataflow, ODR, layering) are never
// cached — they depend on the whole model. Thread-safe; the per-file lint
// pass runs under util::parallel_for.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string_view>
#include <vector>

#include "util/lint/symbol_index.h"

namespace seg::lint {

inline std::uint64_t cache_hash(std::string_view text,
                                std::uint64_t seed = 1469598103934665603ULL) {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t hash = seed;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kPrime;
  }
  hash ^= 0x1f;
  hash *= kPrime;
  return hash;
}

class AnalysisCache {
 public:
  struct SymbolEntry {
    std::vector<SymbolRecord> records;
    std::vector<DeprecatedDecls::Decl> deprecated;
  };
  struct RuleEntry {
    std::vector<Finding> findings;
    std::vector<char> suppression_used;
  };
  struct Stats {
    std::size_t symbol_hits = 0;
    std::size_t symbol_misses = 0;
    std::size_t rule_hits = 0;
    std::size_t rule_misses = 0;
  };

  bool lookup_symbols(std::uint64_t key, SymbolEntry& out) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = symbols_.find(key);
    if (it == symbols_.end()) {
      ++stats_.symbol_misses;
      return false;
    }
    ++stats_.symbol_hits;
    out = it->second;
    return true;
  }

  void store_symbols(std::uint64_t key, SymbolEntry entry) {
    const std::lock_guard<std::mutex> lock(mutex_);
    symbols_.emplace(key, std::move(entry));
  }

  bool lookup_rules(std::uint64_t key, RuleEntry& out) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = rules_.find(key);
    if (it == rules_.end()) {
      ++stats_.rule_misses;
      return false;
    }
    ++stats_.rule_hits;
    out = it->second;
    return true;
  }

  void store_rules(std::uint64_t key, RuleEntry entry) {
    const std::lock_guard<std::mutex> lock(mutex_);
    rules_.emplace(key, std::move(entry));
  }

  Stats stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::uint64_t, SymbolEntry> symbols_;
  std::map<std::uint64_t, RuleEntry> rules_;
  Stats stats_;
};

}  // namespace seg::lint
