#include "util/lint/symbol_index.h"

#include <algorithm>
#include <cctype>
#include <map>

namespace seg::lint {

namespace {

using Tokens = std::vector<Token>;

// ALL_CAPS names are macro invocations (TEST, EXPECT_EQ, BENCHMARK, ...)
// whose token-level shape mimics a function definition; the index skips
// them entirely.
bool macro_like(std::string_view name) {
  bool has_upper = false;
  for (const char c : name) {
    if (std::islower(static_cast<unsigned char>(c)) != 0) {
      return false;
    }
    has_upper |= std::isupper(static_cast<unsigned char>(c)) != 0;
  }
  return has_upper;
}

std::uint64_t fnv1a(std::uint64_t hash, std::string_view text) {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kPrime;
  }
  hash ^= 0x1f;  // token separator
  hash *= kPrime;
  return hash;
}

std::uint64_t hash_tokens(const Tokens& toks, std::size_t begin, std::size_t end) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (std::size_t i = begin; i < end; ++i) {
    hash = fnv1a(hash, toks[i].text);
  }
  return hash;
}

// Normalized parameter signature of the list at `open`: per parameter, the
// type tokens with the trailing parameter *name* stripped (so declarations
// and definitions that only differ in spelling of the names compare equal),
// defaults dropped. Parameters join with ",", tokens with " ".
std::string signature_of(const Tokens& toks, std::size_t open) {
  const std::size_t close = skip_balanced(toks, open);
  std::string signature;
  std::vector<std::string_view> segment;
  int depth = 0;
  const auto flush = [&] {
    // Drop the trailing identifier when it follows other type tokens: it is
    // the parameter name. A single-token segment (`(int)`) is just a type.
    if (segment.size() >= 2 && !segment.empty()) {
      const std::string_view last = segment.back();
      const bool ident_like = !last.empty() && (std::isalpha(static_cast<unsigned char>(
                                                    last.front())) != 0 ||
                                                last.front() == '_');
      const std::string_view prev = segment[segment.size() - 2];
      const bool prev_closes_type =
          prev == "&" || prev == "*" || prev == ">" || prev == "&&" ||
          (!prev.empty() && (std::isalpha(static_cast<unsigned char>(prev.front())) != 0 ||
                             prev.front() == '_'));
      if (ident_like && prev_closes_type) {
        segment.pop_back();
      }
    }
    if (!signature.empty() || !segment.empty()) {
      if (!signature.empty()) {
        signature += ",";
      }
      for (std::size_t k = 0; k < segment.size(); ++k) {
        signature += (k == 0 ? "" : " ") + std::string(segment[k]);
      }
    }
    segment.clear();
  };
  bool in_default = false;
  for (std::size_t i = open + 1; i + 1 < close; ++i) {
    const auto& t = toks[i];
    if (is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{") || is_punct(t, "<")) {
      ++depth;
    } else if (is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}") ||
               is_punct(t, ">")) {
      --depth;
    }
    if (depth == 0 && is_punct(t, ",")) {
      flush();
      in_default = false;
      continue;
    }
    if (depth == 0 && is_punct(t, "=")) {
      in_default = true;  // default argument: not part of the type
      continue;
    }
    if (!in_default) {
      segment.push_back(t.text);
    }
  }
  flush();
  return signature;
}

struct Scope {
  std::string name;      // empty for anonymous namespaces / extern "C"
  bool internal = false;  // anonymous namespace
  bool is_class = false;
};

}  // namespace

void SymbolIndex::add_file(const ProjectFile& file, std::size_t file_index) {
  collect_deprecated_decls(file.lex, deprecated_);

  const Tokens& toks = file.lex.tokens;
  const std::size_t n = toks.size();
  std::vector<Scope> scopes;
  bool pending_inline = false;
  bool pending_static = false;
  bool pending_template = false;
  const auto reset_pending = [&] {
    pending_inline = pending_static = pending_template = false;
  };

  std::size_t i = 0;
  while (i < n) {
    const Token& t = toks[i];
    if (is_punct(t, ";")) {
      reset_pending();
      ++i;
      continue;
    }
    if (is_id(t, "namespace")) {
      std::size_t j = i + 1;
      std::string name;
      while (j < n && (toks[j].kind == TokKind::kIdentifier || is_punct(toks[j], "::"))) {
        name += toks[j].text;
        ++j;
      }
      if (j < n && is_punct(toks[j], "{")) {
        scopes.push_back(Scope{name, name.empty(), false});
        i = j + 1;
      } else {
        while (j < n && !is_punct(toks[j], ";")) ++j;  // alias / using-directive
        i = j + 1;
      }
      reset_pending();
      continue;
    }
    if (is_id(t, "enum")) {
      std::size_t j = i + 1;
      while (j < n && !is_punct(toks[j], "{") && !is_punct(toks[j], ";")) ++j;
      i = (j < n && is_punct(toks[j], "{")) ? skip_balanced(toks, j) : j + 1;
      reset_pending();
      continue;
    }
    if (is_id(t, "class") || is_id(t, "struct") || is_id(t, "union")) {
      std::size_t j = i + 1;
      std::string name;
      if (j < n && toks[j].kind == TokKind::kIdentifier) {
        name = std::string(toks[j].text);
        ++j;
      }
      int angle = 0;
      while (j < n) {
        if (is_punct(toks[j], "<")) {
          ++angle;
        } else if (is_punct(toks[j], ">")) {
          --angle;
        } else if (angle <= 0 && (is_punct(toks[j], "{") || is_punct(toks[j], ";") ||
                                  is_punct(toks[j], "(") || is_punct(toks[j], "=") ||
                                  is_punct(toks[j], ")"))) {
          break;
        }
        ++j;
      }
      if (j < n && is_punct(toks[j], "{") && !name.empty()) {
        scopes.push_back(Scope{name, false, true});
        reset_pending();
        i = j + 1;
        continue;
      }
      ++i;  // forward declaration or elaborated type specifier
      continue;
    }
    if (is_id(t, "template")) {
      pending_template = true;
      if (i + 1 < n && is_punct(toks[i + 1], "<")) {
        int angle = 0;
        std::size_t j = i + 1;
        while (j < n) {
          if (is_punct(toks[j], "<")) {
            ++angle;
          } else if (is_punct(toks[j], ">") || is_punct(toks[j], ">>")) {
            angle -= toks[j].text == ">>" ? 2 : 1;
            if (angle <= 0) {
              ++j;
              break;
            }
          }
          ++j;
        }
        i = j;
      } else {
        ++i;
      }
      continue;
    }
    if (is_id(t, "inline") || is_id(t, "constexpr") || is_id(t, "consteval")) {
      pending_inline = true;
      ++i;
      continue;
    }
    if (is_id(t, "static")) {
      pending_static = true;
      ++i;
      continue;
    }
    if (is_id(t, "extern") && i + 1 < n && is_punct(toks[i + 1], "{")) {
      // `extern "C" {` — the literal is stripped by the lexer.
      scopes.push_back(Scope{});
      i += 2;
      continue;
    }
    if (is_id(t, "using") || is_id(t, "typedef")) {
      while (i < n && !is_punct(toks[i], ";")) ++i;
      continue;
    }
    if (is_punct(t, "{")) {
      i = skip_balanced(toks, i);  // initializer or body we did not classify
      continue;
    }
    if (is_punct(t, "}")) {
      if (!scopes.empty()) {
        scopes.pop_back();
      }
      reset_pending();
      ++i;
      continue;
    }
    if (t.kind == TokKind::kIdentifier && i + 1 < n && is_punct(toks[i + 1], "(") &&
        is_function_heading(toks, i, i + 1)) {
      // Qualified definition names (`void NameCache::find(...)`) contribute
      // their `Foo::` prefix; the scanner stands on the final component.
      std::string qualifier;
      for (std::size_t k = i; k >= 2 && is_punct(toks[k - 1], "::") &&
                              toks[k - 2].kind == TokKind::kIdentifier;
           k -= 2) {
        qualifier = std::string(toks[k - 2].text) + "::" + qualifier;
      }
      const std::size_t close = skip_balanced(toks, i + 1);
      std::size_t after = close;
      while (after < n &&
             (is_id(toks[after], "const") || is_id(toks[after], "noexcept") ||
              is_id(toks[after], "override") || is_id(toks[after], "final") ||
              is_punct(toks[after], "&") || is_punct(toks[after], "&&"))) {
        if (is_id(toks[after], "noexcept") && after + 1 < n &&
            is_punct(toks[after + 1], "(")) {
          after = skip_balanced(toks, after + 1);
        } else {
          ++after;
        }
      }
      if (after < n && is_punct(toks[after], "->")) {  // trailing return type
        ++after;
        while (after < n && !is_punct(toks[after], "{") && !is_punct(toks[after], ";")) {
          ++after;
        }
      }
      const bool has_body = after < n && is_punct(toks[after], "{");
      const bool is_decl = after < n && is_punct(toks[after], ";");
      if (!has_body && !is_decl) {
        ++i;
        continue;
      }
      if (!macro_like(t.text) && t.text != "main") {
        SymbolRecord record;
        record.name = std::string(t.text);
        std::string scope_path;
        bool in_class = false;
        bool in_anon = false;
        for (const auto& scope : scopes) {
          if (!scope.name.empty()) {
            scope_path += scope.name + "::";
          }
          in_class |= scope.is_class;
          in_anon |= scope.internal;
        }
        record.qualified_name = scope_path + qualifier + record.name;
        record.arity = paren_list_arity(toks, i + 1);
        record.signature = signature_of(toks, i + 1);
        record.file = file.path;
        record.line = t.line;
        record.has_body = has_body;
        record.is_inline = pending_inline || pending_template || in_class;
        record.internal = pending_static || in_anon;
        record.in_header = file.is_header;
        record.file_index = file_index;
        record.param_open = i + 1;
        if (has_body) {
          const std::size_t body_end = skip_balanced(toks, after);
          record.body_hash = hash_tokens(toks, after + 1, body_end - 1);
          record.body_begin = after;
          record.body_end = body_end;
          i = body_end;
        } else {
          i = after + 1;
        }
        records_.push_back(std::move(record));
        reset_pending();
        continue;
      }
      // Macro-shaped pseudo-definition (TEST(...) { ... }): skip its body so
      // its locals never look like top-level declarations.
      i = has_body ? skip_balanced(toks, after) : after + 1;
      reset_pending();
      continue;
    }
    ++i;
  }
}

void SymbolIndex::add_cached(const std::vector<SymbolRecord>& records,
                             const std::vector<DeprecatedDecls::Decl>& deprecated,
                             std::size_t file_index, const std::string& path) {
  for (SymbolRecord record : records) {
    record.file = path;
    record.file_index = file_index;
    records_.push_back(std::move(record));
  }
  for (const auto& decl : deprecated) {
    deprecated_.decls.push_back(decl);
  }
}

SymbolIndex SymbolIndex::build(const ProjectModel& model) {
  SymbolIndex index;
  for (std::size_t f = 0; f < model.files().size(); ++f) {
    index.add_file(model.files()[f], f);
  }
  return index;
}

std::vector<Finding> check_odr(const SymbolIndex& index, const ProjectModel& model,
                               SuppressionUsage* usage) {
  // How many .cpp translation units (transitively) include each file — the
  // evidence for case (c), a non-inline definition in a shared header.
  std::vector<std::size_t> tu_count(model.files().size(), 0);
  for (std::size_t f = 0; f < model.files().size(); ++f) {
    const auto& path = model.files()[f].path;
    if (path.size() < 4 || path.substr(path.size() - 4) != ".cpp") {
      continue;
    }
    std::vector<char> seen(model.files().size(), 0);
    std::vector<std::size_t> stack{f};
    seen[f] = 1;
    while (!stack.empty()) {
      const std::size_t at = stack.back();
      stack.pop_back();
      for (const auto& edge : model.files()[at].edges) {
        if (edge.target != ProjectModel::npos && seen[edge.target] == 0) {
          seen[edge.target] = 1;
          ++tu_count[edge.target];
          stack.push_back(edge.target);
        }
      }
    }
  }

  // Group external definitions by qualified name + arity; std::map keeps
  // report order deterministic.
  std::map<std::string, std::vector<const SymbolRecord*>> groups;
  for (const auto& record : index.records()) {
    if (record.has_body && !record.internal) {
      groups[record.qualified_name + "/" + std::to_string(record.arity)].push_back(
          &record);
    }
  }

  std::vector<Finding> findings;
  for (const auto& [key, defs] : groups) {
    (void)key;
    // Case (c): a single non-inline header definition pulled into >= 2 TUs.
    for (const auto* def : defs) {
      if (!def->in_header || def->is_inline) {
        continue;
      }
      const std::size_t file_index = model.index_of(def->file);
      if (file_index != ProjectModel::npos && tu_count[file_index] >= 2) {
        findings.push_back(Finding{
            def->file, def->line, "R-ODR1",
            "'" + def->qualified_name + "' is defined (non-inline) in a header "
                "included by " + std::to_string(tu_count[file_index]) +
                " translation units; every one of them emits a definition — "
                "mark it inline"});
      }
    }
    // Cases (a)/(b) need two definitions in different files with matching
    // signatures (different signatures are distinct overloads).
    std::vector<const SymbolRecord*> distinct;
    for (const auto* def : defs) {
      const bool dup = std::any_of(distinct.begin(), distinct.end(),
                                   [&](const SymbolRecord* d) { return d->file == def->file; });
      if (!dup) {
        distinct.push_back(def);
      }
    }
    if (distinct.size() < 2) {
      continue;
    }
    const bool signatures_match = std::all_of(
        distinct.begin(), distinct.end(),
        [&](const SymbolRecord* d) { return d->signature == distinct[0]->signature; });
    if (!signatures_match) {
      continue;
    }
    std::string sites;
    for (const auto* def : distinct) {
      sites += (sites.empty() ? "" : ", ") + def->file + ":" + std::to_string(def->line);
    }
    const bool all_inline = std::all_of(distinct.begin(), distinct.end(),
                                        [](const SymbolRecord* d) { return d->is_inline; });
    if (all_inline) {
      const bool divergent = std::any_of(
          distinct.begin(), distinct.end(),
          [&](const SymbolRecord* d) { return d->body_hash != distinct[0]->body_hash; });
      if (divergent) {
        findings.push_back(Finding{
            distinct[0]->file, distinct[0]->line, "R-ODR1",
            "divergent inline definitions of '" + distinct[0]->qualified_name + "(" +
                std::to_string(distinct[0]->arity) + " args)' across TUs — bodies "
                "differ, which is undefined behavior; conflicting definitions: " +
                sites});
      }
    } else {
      findings.push_back(Finding{
          distinct[0]->file, distinct[0]->line, "R-ODR1",
          "multiple definitions of '" + distinct[0]->qualified_name + "(" +
              std::to_string(distinct[0]->arity) + " args)' across translation "
              "units: " + sites});
    }
  }

  // Per-file suppressions still apply, keyed on the finding's anchor file.
  std::vector<Finding> kept;
  for (auto& finding : findings) {
    const std::size_t file_index = model.index_of(finding.file);
    if (file_index != ProjectModel::npos) {
      std::vector<Finding> one;
      one.push_back(std::move(finding));
      one = apply_suppressions(std::move(one),
                               model.files()[file_index].lex.suppressions,
                               usage ? &usage->used[file_index] : nullptr);
      if (!one.empty()) {
        kept.push_back(std::move(one.front()));
      }
    } else {
      kept.push_back(std::move(finding));
    }
  }
  return kept;
}

}  // namespace seg::lint
