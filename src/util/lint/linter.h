// seg-lint driver: file discovery, classification, and include-aware
// declaration collection.
//
// The driver walks source roots for .cpp/.h files, classifies each one
// (header? emission path? timing-allowlisted?), lexes it plus the project
// headers it reaches through quoted #includes (so unordered members
// declared in a class header are known when the .cpp iterates them), and
// runs the rules from rules.h.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/lint/rules.h"

namespace seg::lint {

struct LintOptions {
  /// Path substrings whose files may read clocks / entropy (R-DET1).
  std::vector<std::string> timing_allowlist = {
      "util/obs", "util/logging", "util/lint", "bench_common",
  };
  /// Path substrings whose files may touch raw timing primitives
  /// (steady_clock, Stopwatch) directly; everything else must go through
  /// the seg::obs span/metric layer (R-OBS1).
  std::vector<std::string> obs_allowlist = {"util/obs/"};
  /// Path substrings whose files may issue raw mapping syscalls (mmap,
  /// munmap, mremap, madvise, mbind); everything else must go through
  /// util::MmapFile (R-MEM1).
  std::vector<std::string> mmap_allowlist = {"util/mmap_file"};
  /// Path substrings on the wire-parsing surface: raw byte-buffer
  /// subscripts and pointer arithmetic are confined to ByteCursor there
  /// (R-WIRE1).
  std::vector<std::string> wire_paths = {"dns/wire/"};
  /// Path substrings of the ByteCursor implementation itself (R-WIRE1
  /// exempt — it is where the bounds checks live).
  std::vector<std::string> wire_allowlist = {"dns/wire/bytes"};
  /// Path substrings exempt from stale-suppression detection (R-SUP1). The
  /// checker's own sources mention directives in documentation comments,
  /// which the lexer cannot tell from real ones.
  std::vector<std::string> sup_exempt_paths = {"util/lint"};
  /// Extra path substrings forced into R-DET2's emission scope. Files are
  /// auto-classified as emission when they use stream/printf output or live
  /// under a feature-extraction / serialization path.
  std::vector<std::string> emission_paths = {"features/", "_io."};
  /// Roots the include resolver may search for quoted #includes (usually
  /// the same directories being linted; `src` matters in practice).
  std::vector<std::string> include_roots;
  /// When non-empty, only findings for these rules are reported.
  std::vector<std::string> only_rules;
  /// Path to the layers.toml layering spec for whole-program mode. Empty
  /// disables R-ARCH1 (the include graph is still built for R-ARCH2/R-ODR1).
  std::string layers_file;
};

/// Lints one in-memory source (used by the unit tests and the CLI's stdin
/// mode). `extra_header_text` optionally supplies companion-header content
/// for declaration collection.
std::vector<Finding> lint_text(std::string_view path, std::string_view text,
                               const LintOptions& options,
                               std::string_view extra_header_text = {});

/// Lints one on-disk file, resolving its quoted includes against
/// `options.include_roots`.
std::vector<Finding> lint_file(const std::string& path, const LintOptions& options);

/// All .cpp/.h files under `roots` (files are accepted verbatim),
/// lexicographically sorted so diagnostics order is stable.
std::vector<std::string> collect_sources(const std::vector<std::string>& roots);

class ProjectModel;
class AnalysisCache;

/// Whole-program lint (seg-lint v3): loads every source once into the
/// project model (project_model.h), runs the per-file rules in parallel
/// (util::parallel_for; set_parallelism / SEG_THREADS control the width,
/// output is byte-identical at any width) with R-API1 backed by the
/// cross-TU symbol index, then the cross-file passes — R-ARCH1 layering
/// (when `options.layers_file` is set), R-ARCH2 include cycles, R-ODR1,
/// and the interprocedural dataflow rules R-DET3 / R-EXC1 (dataflow.h).
/// Suppression directives that cover no finding come back as R-SUP1.
/// Findings are sorted by (file, line, rule). A malformed layers file
/// yields a single CONFIG finding. `cache` (analysis_cache.h) optionally
/// reuses per-file results across runs — the --diff-base double lint.
std::vector<Finding> lint_project(const std::vector<std::string>& sources,
                                  const LintOptions& options,
                                  AnalysisCache* cache = nullptr);

/// The analysis half of lint_project, over an already-built model. Exposed
/// so tests can lint in-memory trees (ProjectModel::from_memory).
std::vector<Finding> lint_model(const ProjectModel& model,
                                const LintOptions& options,
                                AnalysisCache* cache = nullptr);

/// Classification used for R-DET2 scoping; exposed for tests.
bool is_emission_file(std::string_view path, const std::vector<Token>& tokens,
                      const LintOptions& options);

}  // namespace seg::lint
