// Interprocedural dataflow for seg-lint v3.
//
// A taint analysis over the call graph (call_graph.h) that tracks values
// produced by iterating unordered containers — whose order is a function of
// the hash seed and insertion history, not the data — until they reach a
// serialization sink (stream insertion, printf-family call) or are
// neutralized (collected into an ordered container, passed through
// std::sort). Per-function summaries make the analysis interprocedural:
//
//   taints_return       the function returns a container/value populated by
//                       unordered iteration without an intervening sort;
//   tainted_out_params  mutable-reference parameters the function grows
//                       with unordered-iteration values;
//   exposes_callback    the function invokes a std::function parameter
//                       with unordered-iteration values (the visit()
//                       pattern), so lambdas passed at call sites see them;
//   routes_exceptions   the function routes exceptions to its caller
//                       (std::packaged_task, or catch(...) plus
//                       std::current_exception) — the R-EXC1 contract.
//
// Summaries are iterated to a fixed point (facts only ever widen, so
// convergence is bounded), then a final pass emits findings:
//
//   R-DET3  an unordered-iteration value reaches a serialization sink,
//           possibly through returns, out-params, or callbacks. Supersedes
//           the file-local R-DET2 in whole-program mode.
//   R-EXC1  a thread body (std::thread construction, or emplace into a
//           vector<std::thread>) neither routes exceptions itself nor calls
//           a function that does; an escaping exception calls
//           std::terminate (check_thread_exceptions).
//
// Like the rest of the checker this is heuristic token matching, tuned to
// over-approximate taint propagation and under-approximate sink matching:
// a missed finding is recoverable, a noisy rule gets disabled.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/lint/call_graph.h"

namespace seg::lint {

/// Per-function summary, widened monotonically across fixed-point rounds.
struct FunctionFacts {
  bool taints_return = false;
  /// Human-readable provenance ("iteration over unordered 'days_'"),
  /// set once when the fact first flips so messages stay stable.
  std::string return_origin;
  /// (parameter position, provenance) pairs for mutable-reference
  /// parameters grown with tainted values.
  std::vector<std::pair<std::size_t, std::string>> tainted_out_params;
  bool exposes_callback = false;
  std::string callback_origin;
  bool routes_exceptions = false;
};

struct DataflowResult {
  /// Parallel to `index.records()`.
  std::vector<FunctionFacts> facts;
  /// Raw R-DET3 findings; the driver applies suppressions and test-path
  /// filtering.
  std::vector<Finding> det3;
};

/// Runs the taint analysis over every definition in `index`.
/// `closure_decls` holds, per model file, the unordered-container
/// declarations visible from that file (its own plus its include closure) —
/// the same scope the per-file R-DET2 pass uses. Deterministic: records are
/// analyzed in index order and findings come back in discovery order.
DataflowResult run_dataflow(const SymbolIndex& index, const CallGraph& graph,
                            const ProjectModel& model,
                            const std::vector<UnorderedDecls>& closure_decls);

/// R-EXC1 over the facts from `run_dataflow` (see header comment). Raw
/// findings; the driver applies suppressions and test-path filtering.
std::vector<Finding> check_thread_exceptions(const SymbolIndex& index,
                                             const CallGraph& graph,
                                             const ProjectModel& model,
                                             const DataflowResult& flow);

}  // namespace seg::lint
