#include "util/lint/call_graph.h"

#include <algorithm>
#include <cctype>

namespace seg::lint {

namespace {

using Tokens = std::vector<Token>;

// Mirrors the symbol index's macro filter: ALL_CAPS call-shaped names are
// macro invocations (EXPECT_EQ, SEG_LOG, ...), not functions.
bool macro_like(std::string_view name) {
  bool has_upper = false;
  for (const char c : name) {
    if (std::islower(static_cast<unsigned char>(c)) != 0) {
      return false;
    }
    has_upper |= std::isupper(static_cast<unsigned char>(c)) != 0;
  }
  return has_upper;
}

// Keywords whose token shape is `kw (...)` but which never name a callee.
bool call_keyword(std::string_view id) {
  return id == "if" || id == "for" || id == "while" || id == "switch" ||
         id == "catch" || id == "return" || id == "sizeof" || id == "alignof" ||
         id == "decltype" || id == "static_cast" || id == "dynamic_cast" ||
         id == "const_cast" || id == "reinterpret_cast" || id == "noexcept" ||
         id == "assert" || id == "defined" || id == "alignas" || id == "new" ||
         id == "delete" || id == "throw" || id == "co_await" || id == "co_return";
}

}  // namespace

std::vector<std::size_t> CallGraph::resolve(std::string_view name,
                                            std::size_t arity) const {
  std::vector<std::size_t> exact;
  std::vector<std::size_t> same_name;
  auto it = std::lower_bound(
      by_name_.begin(), by_name_.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  for (; it != by_name_.end() && it->first == name; ++it) {
    same_name.push_back(it->second);
    if (index_->records()[it->second].arity == arity) {
      exact.push_back(it->second);
    }
  }
  std::vector<std::size_t>& picked = exact.empty() ? same_name : exact;
  std::sort(picked.begin(), picked.end());
  return std::move(picked);
}

CallGraph CallGraph::build(const SymbolIndex& index, const ProjectModel& model) {
  CallGraph graph;
  graph.index_ = &index;
  const auto& records = index.records();
  graph.callees_.resize(records.size());

  for (std::size_t r = 0; r < records.size(); ++r) {
    if (records[r].has_body) {
      graph.by_name_.emplace_back(records[r].name, r);
    }
  }
  std::sort(graph.by_name_.begin(), graph.by_name_.end());

  for (std::size_t r = 0; r < records.size(); ++r) {
    const SymbolRecord& record = records[r];
    if (!record.has_body || record.file_index >= model.files().size()) {
      continue;
    }
    const Tokens& toks = model.files()[record.file_index].lex.tokens;
    std::vector<std::size_t>& edges = graph.callees_[r];
    for (std::size_t i = record.body_begin + 1; i + 1 < record.body_end; ++i) {
      if (toks[i].kind != TokKind::kIdentifier || !is_punct(toks[i + 1], "(") ||
          call_keyword(toks[i].text) || macro_like(toks[i].text)) {
        continue;
      }
      // `Type name(args)` inside a body is a local declaration, not a call;
      // is_function_heading's declaration shape catches it.
      if (is_function_heading(toks, i, i + 1)) {
        continue;
      }
      const std::size_t arity = paren_list_arity(toks, i + 1);
      for (const std::size_t callee : graph.resolve(toks[i].text, arity)) {
        if (!std::count(edges.begin(), edges.end(), callee)) {
          edges.push_back(callee);
        }
      }
    }
    std::sort(edges.begin(), edges.end());
  }
  return graph;
}

}  // namespace seg::lint
