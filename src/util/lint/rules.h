// seg-lint rule definitions.
//
// Each rule enforces one project contract from the parallel-determinism
// work (see docs/static-analysis.md for the full rationale):
//
//   R-DET1  no wall-clock / ambient-randomness calls (rand, srand,
//           std::random_device, time(nullptr), system_clock::now) in
//           pipeline code outside the timing/instrumentation allowlist.
//   R-DET2  no range-for iteration over std::unordered_map /
//           std::unordered_set in files that serialize, extract features,
//           or emit scores — hash-table ordering leaks into output.
//   R-RACE1 no std::vector<bool> anywhere; its packed-bit proxy reference
//           makes element writes from different threads race.
//   R-RACE2 lambdas passed to parallel_for / parallel_chunks that capture
//           by reference must not grow a captured container or write
//           through an unpartitioned subscript.
//   R-HDR1  every header starts its include story with #pragma once.
//   R-HDR2  no `using namespace` at header scope.
//   R-API1  no calls to deprecated entry points (declarations tagged with
//           a `// seg-deprecated` marker comment in a header) from
//           non-test code; arity disambiguates same-name overloads. In
//           whole-program mode (project_model.h) the deprecated set comes
//           from the cross-TU symbol index, so calls through headers the
//           caller never includes are still caught.
//   R-LIFE1 no returning a reference, string_view, or span that points at
//           function-local storage or at the temporary returned by a
//           `*_batch` call (the parallel feature path hands out batch
//           results by value; a view into one dangles immediately).
//   R-OBS1  no raw timing primitives (steady_clock, high_resolution_clock,
//           Stopwatch) outside src/util/obs/ — instrumentation goes through
//           the seg::obs span/metric layer so every timing number is
//           visible to the trace/run-report exporters.
//   R-MEM1  no raw memory-mapping syscalls (mmap, munmap, mremap, madvise,
//           mbind) outside src/util/mmap_file.{h,cpp} — mapping lifetime,
//           NUMA policy, and error handling live behind util::MmapFile so
//           every mapping is released exactly once and honors
//           SEG_NUMA_POLICY.
//
// Rules operate on the token stream from lexer.h plus a per-file
// classification computed by the driver in linter.h. All matching is
// intentionally heuristic; `// seg-lint: allow(RULE)` suppresses a finding
// on the directive's line or the line below it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/lint/lexer.h"

namespace seg::lint {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Per-file facts the rules condition on, derived by the driver.
struct FileInfo {
  std::string path;
  bool is_header = false;
  /// File serializes, extracts features, or emits scores (R-DET2 scope).
  bool emission = false;
  /// File is on the timing/instrumentation allowlist (R-DET1 exempt).
  bool timing_allowed = false;
  /// Test code (under tests/ or named *_test.cpp): exempt from R-API1 so
  /// deprecated entry points keep regression coverage until deleted.
  bool is_test = false;
  /// File lives inside the obs layer and may use raw timing primitives
  /// (R-OBS1 exempt).
  bool obs_allowed = false;
  /// File is the mmap wrapper itself and may issue raw mapping syscalls
  /// (R-MEM1 exempt).
  bool mmap_allowed = false;
  /// File is on the wire-parsing surface (R-WIRE1 scope): raw byte-buffer
  /// subscripts and pointer arithmetic must stay inside ByteCursor.
  bool wire_scope = false;
  /// File is the ByteCursor implementation itself (R-WIRE1 exempt).
  bool wire_allowed = false;
  /// Set by the whole-program driver: file-local R-DET2 is superseded there
  /// by the interprocedural R-DET3 pass (dataflow.h), so run_rules skips it.
  bool whole_program = false;
};

/// Identifiers known (from this file and its reachable project headers) to
/// name unordered containers: variables/members/parameters plus type
/// aliases that expand to unordered_map/unordered_set.
struct UnorderedDecls {
  std::vector<std::string> names;
  std::vector<std::string> aliases;

  bool has_name(std::string_view id) const;
  bool has_alias(std::string_view id) const;
};

/// Scans a token stream for unordered-container declarations, accumulating
/// into `decls`. Called for the linted file and for each reachable project
/// header so member types declared away from their use are still known.
void collect_unordered_decls(const std::vector<Token>& tokens, UnorderedDecls& decls);

/// Entry points tagged `// seg-deprecated`: the function declared directly
/// below each marker, identified by name plus parameter count so the
/// replacement overload with a different arity stays legal (R-API1).
struct DeprecatedDecls {
  struct Decl {
    std::string name;
    std::size_t arity = 0;
  };
  std::vector<Decl> decls;

  bool matches(std::string_view name, std::size_t arity) const;
};

/// Scans a lexed file for `seg-deprecated` markers and records the tagged
/// declarations. Called for the linted file and its reachable headers.
void collect_deprecated_decls(const LexResult& lex, DeprecatedDecls& decls);

/// Runs every rule over one file's token stream. `decls` and `deprecated`
/// should already contain the header-derived declarations. Suppressed
/// findings are dropped before returning. When `suppression_used` is
/// non-null it must be sized to `lex.suppressions.size()`; entries whose
/// directive dropped at least one finding are set to 1 (stale-suppression
/// detection, R-SUP1).
std::vector<Finding> run_rules(const FileInfo& info, const LexResult& lex,
                               const UnorderedDecls& decls,
                               const DeprecatedDecls& deprecated,
                               std::vector<char>* suppression_used = nullptr);

/// Token-stream structural helpers, shared with the cross-TU passes in
/// project_model.cpp / symbol_index.cpp.
bool is_id(const Token& tok, std::string_view text);
bool is_punct(const Token& tok, std::string_view text);
/// Identifiers that can precede a declared name without being a type.
bool non_type_keyword(std::string_view id);
/// Index just past the token matching the opener at `open` (one of `([{`),
/// or toks.size() when unbalanced.
std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t open);
/// Index just past the `>` matching the `<` at `open`, or `open` when the
/// angle bracket never closes in a plausible span (then it was a
/// comparison). `>>` closes two levels.
std::size_t skip_template_args(const std::vector<Token>& toks, std::size_t open);
/// True for unordered_map / unordered_set / unordered_multimap /
/// unordered_multiset (the R-DET2/R-DET3 source containers).
bool is_unordered_container(std::string_view id);
/// Argument/parameter count of the parenthesized list opening at `open`.
std::size_t paren_list_arity(const std::vector<Token>& toks, std::size_t open);
/// True when the parenthesized list at `open` belongs to a function
/// definition or declaration rather than a call.
bool is_function_heading(const std::vector<Token>& toks, std::size_t name,
                         std::size_t open);

/// True when a suppression directive covers `rule`: exact match
/// ("R-ARCH1"), or the rule's lowercase category ("arch" covers R-ARCH1 and
/// R-ARCH2).
bool suppression_covers(std::string_view directive_rule, std::string_view rule);

/// Drops findings covered by a suppression on their own line or the line
/// above, or by an allow-file directive. Shared by the per-file driver and
/// the whole-program passes in project_model.h. When `used` is non-null it
/// must be sized to `suppressions.size()`; directives that dropped at least
/// one finding are marked 1.
std::vector<Finding> apply_suppressions(std::vector<Finding> findings,
                                        const std::vector<Suppression>& suppressions,
                                        std::vector<char>* used = nullptr);

/// Per-model-file record of which suppression directives covered a finding:
/// `used[file_index][suppression_index]`. The whole-program driver threads
/// one instance through every pass, then reports directives that never
/// fired as R-SUP1 stale-suppression findings.
struct SuppressionUsage {
  std::vector<std::vector<char>> used;
};

}  // namespace seg::lint
