#include "util/rng.h"

#include <cmath>
#include <numeric>

namespace seg::util {

std::uint64_t Rng::next_below(std::uint64_t bound) {
  require(bound > 0, "Rng::next_below: bound must be positive");
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::next_int: lo must be <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_gaussian() {
  // Box-Muller, discarding the second variate to keep the stream position
  // independent of call history.
  double u1 = next_double();
  const double u2 = next_double();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;  // avoid log(0)
  }
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

std::uint64_t Rng::next_poisson(double lambda) {
  require(lambda >= 0.0, "Rng::next_poisson: lambda must be non-negative");
  if (lambda == 0.0) {
    return 0;
  }
  if (lambda < 30.0) {
    // Knuth's product method.
    const double threshold = std::exp(-lambda);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= next_double();
    } while (p > threshold);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the
  // traffic model's large event counts.
  const double sample = lambda + std::sqrt(lambda) * next_gaussian() + 0.5;
  return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  require(k <= n, "Rng::sample_without_replacement: k must be <= n");
  if (k == 0) {
    return {};
  }
  // For small k relative to n use Floyd's algorithm; otherwise a partial
  // Fisher-Yates over the full index range.
  if (k < n / 16) {
    std::vector<std::size_t> result;
    result.reserve(k);
    // Floyd's: guarantees distinctness, O(k) expected insertions.
    std::vector<std::size_t> chosen;
    chosen.reserve(k);
    for (std::size_t j = n - k; j < n; ++j) {
      const std::size_t t = static_cast<std::size_t>(next_below(j + 1));
      if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
        chosen.push_back(t);
      } else {
        chosen.push_back(j);
      }
    }
    shuffle(std::span<std::size_t>(chosen));
    return chosen;
  }
  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    std::swap(indices[i], indices[i + next_below(n - i)]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix the parent's state with the stream id through SplitMix64 so child
  // streams are decorrelated from the parent and from each other.
  SplitMix64 sm(state_[0] ^ (stream_id * 0x9e3779b97f4a7c15ULL) ^ state_[3]);
  Rng child(sm.next());
  return child;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
  require(n > 0, "ZipfSampler: n must be positive");
  require(s > 0.0, "ZipfSampler: exponent must be positive");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) {
    c /= total;
  }
  cdf_.back() = 1.0;  // guard against floating-point shortfall
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t i) const {
  require(i < cdf_.size(), "ZipfSampler::pmf: rank out of range");
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace seg::util
