// Wall-clock stopwatch used by the pipeline's timing reports (paper IV-G).
#pragma once

#include <chrono>

namespace seg::util {

/// Monotonic stopwatch. Starts on construction; restart() resets.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace seg::util
