// Small string utilities shared across the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace seg::util {

/// Splits `input` on `delimiter`, returning views into `input`. Empty fields
/// are preserved ("a..b" on '.' -> {"a", "", "b"}). The views are valid only
/// while the underlying buffer lives.
std::vector<std::string_view> split(std::string_view input, char delimiter);

/// Splits but skips empty fields.
std::vector<std::string_view> split_skip_empty(std::string_view input, char delimiter);

/// Joins `parts` with `delimiter`.
std::string join(const std::vector<std::string_view>& parts, std::string_view delimiter);
std::string join(const std::vector<std::string>& parts, std::string_view delimiter);

/// Trims ASCII whitespace from both ends, returning a view into the input.
std::string_view trim(std::string_view input);

/// ASCII lowercase copy.
std::string to_lower(std::string_view input);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Parses a non-negative integer; throws ParseError on malformed input or
/// overflow.
std::uint64_t parse_u64(std::string_view text);

/// Parses a double; throws ParseError on malformed input.
double parse_double(std::string_view text);

/// Formats `value` with `digits` decimal places.
std::string format_double(double value, int digits);

/// Human-readable approximate count: 1234567 -> "1.23M".
std::string format_count(std::uint64_t value);

}  // namespace seg::util
