// Hashing helpers: FNV-1a for strings, a 64-bit mixer for integers, and a
// combine helper for composite keys.
#pragma once

#include <cstdint>
#include <string_view>

namespace seg::util {

/// 64-bit FNV-1a over a byte string.
constexpr std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Strong 64-bit integer mixer (SplitMix64 finalizer).
constexpr std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent hash combine.
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

}  // namespace seg::util
