#include "util/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

namespace seg::util {

namespace {

std::size_t default_parallelism() {
  if (const char* env = std::getenv("SEG_THREADS"); env != nullptr) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

struct SharedPoolState {
  std::mutex mutex;
  std::size_t requested = 0;  // 0 = default
  std::unique_ptr<ThreadPool> pool;
};

SharedPoolState& state() {
  static SharedPoolState instance;
  return instance;
}

}  // namespace

std::size_t parallelism() {
  auto& s = state();
  std::lock_guard lock(s.mutex);
  return s.requested != 0 ? s.requested : default_parallelism();
}

void set_parallelism(std::size_t num_threads) {
  auto& s = state();
  std::lock_guard lock(s.mutex);
  s.requested = num_threads;
  s.pool.reset();  // rebuilt at the new size on next use
}

ThreadPool& shared_pool() {
  auto& s = state();
  std::lock_guard lock(s.mutex);
  const std::size_t want = s.requested != 0 ? s.requested : default_parallelism();
  if (s.pool == nullptr || s.pool->size() != want) {
    s.pool.reset();
    s.pool = std::make_unique<ThreadPool>(want);
  }
  return *s.pool;
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) {
    return;
  }
  if (count < 2 || parallelism() < 2) {
    for (std::size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  shared_pool().parallel_for(count, fn);
}

std::size_t default_chunk_count(std::size_t count) {
  return std::max<std::size_t>(1, std::min(count, parallelism()));
}

void parallel_chunks(std::size_t count, std::size_t num_chunks,
                     const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (count == 0) {
    return;
  }
  if (num_chunks == 0) {
    num_chunks = default_chunk_count(count);
  }
  num_chunks = std::max<std::size_t>(1, std::min(num_chunks, count));
  const std::size_t chunk_size = (count + num_chunks - 1) / num_chunks;
  if (num_chunks == 1 || parallelism() < 2) {
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t begin = c * chunk_size;
      const std::size_t end = std::min(count, begin + chunk_size);
      if (begin < end) {
        fn(c, begin, end);
      }
    }
    return;
  }
  shared_pool().parallel_for(num_chunks, [&](std::size_t c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(count, begin + chunk_size);
    if (begin < end) {
      fn(c, begin, end);
    }
  });
}

}  // namespace seg::util
