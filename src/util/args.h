// Minimal command-line argument parser for the tools/ binaries.
//
// Supports `--key value`, `--key=value`, boolean `--flag`, and positional
// arguments. Unknown flags are an error; every access is checked so typos
// fail loudly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace seg::util {

class Args {
 public:
  /// Parses argv (excluding argv[0]). `flag_names` lists boolean flags —
  /// everything else starting with "--" expects a value. Throws ParseError
  /// on malformed input.
  Args(int argc, const char* const* argv,
       const std::vector<std::string>& flag_names = {});

  const std::vector<std::string>& positional() const { return positional_; }

  bool has(std::string_view key) const;

  /// Boolean flag presence.
  bool flag(std::string_view key) const { return has(key); }

  /// Required string option; throws ParseError when missing.
  std::string get(std::string_view key) const;

  /// Optional with default.
  std::string get_or(std::string_view key, std::string_view fallback) const;
  std::int64_t get_int_or(std::string_view key, std::int64_t fallback) const;
  double get_double_or(std::string_view key, double fallback) const;

 private:
  std::unordered_map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace seg::util
