// Minimal leveled logger.
//
// A single process-wide logger with a configurable level and sink. Designed
// for long-running pipeline stages: messages carry a monotonic elapsed-time
// stamp (from the obs trace epoch) and a dense thread id, so interleaved
// parallel-stage output is attributable and reports read like the paper's
// timing section (IV-G). For per-item warnings inside hot loops, use
// SEG_LOG_EVERY_N to rate-limit a call site.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace seg::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns a short uppercase tag for a level ("DEBUG", "INFO", ...).
std::string_view log_level_name(LogLevel level);

/// Dense id of the calling thread (0 for the first thread to log, 1 for the
/// second, ...). Stable for the thread's lifetime.
std::uint32_t log_thread_id();

/// Process-wide logger. Thread-safe. By default logs kInfo and above to
/// stderr; a custom sink may be installed for tests.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  /// Installs a sink; pass nullptr to restore the default stderr sink
  /// (has_custom_sink() verifiably flips back to false).
  void set_sink(Sink sink);

  /// True while a custom sink (set_sink with a callable) is installed.
  bool has_custom_sink() const;

  /// Emits a message if `level` is at or above the configured level. The
  /// sink runs outside the logger's lock, so a sink may itself log.
  void log(LogLevel level, std::string_view message);

 private:
  Logger() = default;

  mutable std::mutex mutex_;
  LogLevel level_ = LogLevel::kInfo;
  Sink sink_;
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}

/// True on the first call and every n-th call after it (per counter).
inline bool every_n_tick(std::atomic<std::uint64_t>& counter, std::uint64_t n) {
  return counter.fetch_add(1, std::memory_order_relaxed) % (n == 0 ? 1 : n) == 0;
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  Logger::instance().log(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  Logger::instance().log(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  Logger::instance().log(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  Logger::instance().log(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

/// Rate-limited logging for hot loops: runs `statement` on the 1st,
/// (n+1)-th, (2n+1)-th, ... execution of this call site (across threads).
///
///   SEG_LOG_EVERY_N(1000, util::log_warn("skipping invalid name ", name));
#define SEG_LOG_EVERY_N(n, statement)                                        \
  do {                                                                       \
    static std::atomic<std::uint64_t> seg_log_every_n_counter{0};            \
    if (::seg::util::detail::every_n_tick(seg_log_every_n_counter, (n))) {   \
      statement;                                                             \
    }                                                                        \
  } while (false)

}  // namespace seg::util
