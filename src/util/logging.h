// Minimal leveled logger.
//
// A single process-wide logger with a configurable level and sink. Designed
// for long-running pipeline stages: messages carry a monotonic elapsed-time
// stamp so reports read like the paper's timing section (IV-G).
#pragma once

#include <chrono>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace seg::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns a short uppercase tag for a level ("DEBUG", "INFO", ...).
std::string_view log_level_name(LogLevel level);

/// Process-wide logger. Thread-safe. By default logs kInfo and above to
/// stderr; a custom sink may be installed for tests.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  /// Installs a sink; pass nullptr to restore the default stderr sink.
  void set_sink(Sink sink);

  /// Emits a message if `level` is at or above the configured level.
  void log(LogLevel level, std::string_view message);

 private:
  Logger();

  mutable std::mutex mutex_;
  LogLevel level_ = LogLevel::kInfo;
  Sink sink_;
  std::chrono::steady_clock::time_point start_;
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  Logger::instance().log(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  Logger::instance().log(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  Logger::instance().log(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  Logger::instance().log(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace seg::util
