// String interner: maps strings to dense 32-bit ids and back.
//
// The machine-domain graph stores millions of domain names and machine
// identifiers; interning them once keeps the graph itself id-based and
// cache-friendly (Core Guidelines Per.* — prefer compact data).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace seg::util {

/// Dense string-to-id table. Ids are assigned in first-seen order starting
/// at 0 and are stable for the interner's lifetime.
class StringInterner {
 public:
  using Id = std::uint32_t;
  static constexpr Id kInvalidId = 0xffffffffu;

  /// Returns the id of `text`, interning it if new.
  Id intern(std::string_view text);

  /// Returns the id of `text` if already interned.
  std::optional<Id> find(std::string_view text) const;

  /// Returns the string for an id. Requires id < size().
  std::string_view lookup(Id id) const;

  std::size_t size() const { return strings_.size(); }
  bool empty() const { return strings_.empty(); }

  void reserve(std::size_t n) { index_.reserve(n); }

 private:
  // deque keeps string storage stable so string_view keys into it survive
  // growth; unordered_map keys view the deque elements.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, Id> index_;
};

}  // namespace seg::util
