// Precondition / invariant checking helpers.
//
// Following the Core Guidelines (I.6, E.12) we express preconditions as
// checked requirements that throw on violation rather than macros that
// abort. These are used for programmer-facing contract violations; data
// errors use seg::util::ParseError and friends.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace seg::util {

/// Thrown when a function precondition is violated.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when malformed external data is encountered (logs, CSV, domain
/// strings, ...). Distinct from PreconditionError so callers can recover
/// from bad input without masking programming bugs.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Checks a precondition; throws PreconditionError with `message` when
/// `condition` is false. Intentionally always-on (not compiled out): the
/// library's hot paths avoid calling this per-element.
inline void require(bool condition, std::string_view message) {
  if (!condition) {
    throw PreconditionError(std::string(message));
  }
}

/// Checks validity of parsed external data; throws ParseError when false.
inline void require_data(bool condition, std::string_view message) {
  if (!condition) {
    throw ParseError(std::string(message));
  }
}

}  // namespace seg::util
