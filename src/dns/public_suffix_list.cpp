#include "dns/public_suffix_list.h"

#include "util/require.h"
#include "util/strings.h"

namespace seg::dns {

namespace {

// Returns the suffix of `domain` starting at label index `i` (0 = whole
// domain). `boundaries[i]` is the byte offset where label i starts.
std::vector<std::size_t> label_starts(std::string_view domain) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < domain.size(); ++i) {
    if (domain[i] == '.') {
      starts.push_back(i + 1);
    }
  }
  return starts;
}

}  // namespace

PublicSuffixList PublicSuffixList::with_default_rules() {
  PublicSuffixList psl;
  psl.add_rules_from_text(default_public_suffix_rules());
  return psl;
}

void PublicSuffixList::add_rule(std::string_view rule) {
  rule = util::trim(rule);
  util::require_data(!rule.empty(), "PublicSuffixList::add_rule: empty rule");
  const std::string lower = util::to_lower(rule);
  std::string_view body = lower;
  RuleKind kind = RuleKind::kNormal;
  if (body.front() == '!') {
    kind = RuleKind::kException;
    body.remove_prefix(1);
  } else if (util::starts_with(body, "*.")) {
    kind = RuleKind::kWildcard;
    body.remove_prefix(2);
  }
  util::require_data(!body.empty() && body.front() != '.' && body.back() != '.' &&
                         body.find("*") == std::string_view::npos,
                     "PublicSuffixList::add_rule: malformed rule: '" + std::string(rule) + "'");
  switch (kind) {
    case RuleKind::kNormal:
      normal_.emplace(body);
      break;
    case RuleKind::kWildcard:
      wildcard_.emplace(body);
      break;
    case RuleKind::kException:
      exception_.emplace(body);
      break;
  }
}

void PublicSuffixList::add_rules_from_text(std::string_view text) {
  for (const auto line : util::split(text, '\n')) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || util::starts_with(trimmed, "//")) {
      continue;
    }
    add_rule(trimmed);
  }
}

std::size_t PublicSuffixList::rule_count() const {
  return normal_.size() + wildcard_.size() + exception_.size();
}

std::string_view PublicSuffixList::public_suffix(std::string_view domain) const {
  const auto starts = label_starts(domain);
  const std::size_t n = starts.size();

  // Exception rules win outright: the public suffix is the exception's
  // parent (one label shorter than the matched rule).
  for (std::size_t i = 0; i < n; ++i) {
    const std::string_view suffix = domain.substr(starts[i]);
    if (exception_.contains(suffix)) {
      const auto dot = suffix.find('.');
      return dot == std::string_view::npos ? std::string_view() : suffix.substr(dot + 1);
    }
  }

  // Otherwise the longest matching rule wins. A wildcard rule "*.ck"
  // (stored as "ck") matches any suffix with exactly one label before "ck".
  for (std::size_t i = 0; i < n; ++i) {
    const std::string_view suffix = domain.substr(starts[i]);
    if (normal_.contains(suffix)) {
      return suffix;
    }
    if (i + 1 < n) {
      const std::string_view parent = domain.substr(starts[i + 1]);
      if (wildcard_.contains(parent)) {
        return suffix;
      }
    }
  }

  // Prevailing "*" rule: the bare TLD is a public suffix.
  return domain.substr(starts.back());
}

std::optional<std::string_view> PublicSuffixList::registrable_domain(
    std::string_view domain) const {
  const std::string_view suffix = public_suffix(domain);
  if (suffix.size() >= domain.size()) {
    return std::nullopt;  // domain is itself a public suffix
  }
  // One more label to the left of the suffix.
  const std::string_view head = domain.substr(0, domain.size() - suffix.size() - 1);
  const auto last_dot = head.rfind('.');
  const std::size_t start = last_dot == std::string_view::npos ? 0 : last_dot + 1;
  return domain.substr(start);
}

std::string_view PublicSuffixList::e2ld_or_self(std::string_view domain) const {
  const auto reg = registrable_domain(domain);
  return reg.has_value() ? *reg : domain;
}

std::string_view default_public_suffix_rules() {
  // Snapshot of commonly seen ICANN public suffixes, plus the paper's custom
  // augmentation: zones owned by dynamic-DNS / free-hosting providers whose
  // subdomains are freely registrable and therefore must be treated as
  // separate registrable domains (Section II-A, footnote 2).
  return R"psl(
// --- generic TLDs ---
com
net
org
info
biz
name
pro
mobi
asia
tel
xxx
edu
gov
mil
int
aero
coop
museum
jobs
travel
cat
// --- common ccTLDs with second-level registration ---
co.uk
org.uk
me.uk
ltd.uk
plc.uk
net.uk
sch.uk
ac.uk
gov.uk
nhs.uk
police.uk
uk
com.br
net.br
org.br
gov.br
edu.br
blog.br
eco.br
br
com.cn
net.cn
org.cn
gov.cn
edu.cn
ac.cn
cn
co.jp
ne.jp
or.jp
go.jp
ac.jp
ad.jp
ed.jp
gr.jp
lg.jp
jp
co.kr
ne.kr
or.kr
re.kr
go.kr
ac.kr
kr
com.au
net.au
org.au
edu.au
gov.au
id.au
asn.au
au
co.nz
net.nz
org.nz
govt.nz
ac.nz
geek.nz
nz
co.in
net.in
org.in
firm.in
gen.in
ind.in
ac.in
edu.in
gov.in
in
com.mx
net.mx
org.mx
edu.mx
gob.mx
mx
com.ar
net.ar
org.ar
edu.ar
gob.ar
ar
com.tr
net.tr
org.tr
edu.tr
gov.tr
tr
com.tw
net.tw
org.tw
edu.tw
gov.tw
tw
com.hk
net.hk
org.hk
edu.hk
gov.hk
hk
com.sg
net.sg
org.sg
edu.sg
gov.sg
sg
co.za
net.za
org.za
ac.za
gov.za
za
com.ua
net.ua
org.ua
edu.ua
gov.ua
in.ua
ua
com.ru
net.ru
org.ru
pp.ru
msk.ru
spb.ru
ru
su
de
fr
it
es
nl
be
ch
at
se
no
dk
fi
pl
cz
sk
hu
ro
bg
gr
pt
ie
lu
li
is
ee
lv
lt
ca
us
eu
me
tv
cc
ws
la
io
co
ai
sh
ac
gg
je
im
// --- wildcard suffix examples (PSL semantics exercised) ---
*.ck
!www.ck
*.bd
*.kw
// --- paper's custom augmentation: dynamic DNS & free hosting zones ---
dyndns.org
dyndns.com
dyndns.biz
dyndns.info
dyndns-home.com
dyndns-ip.com
no-ip.org
no-ip.com
no-ip.biz
no-ip.info
hopto.org
zapto.org
sytes.net
servebeer.com
servegame.com
duckdns.org
dynu.net
afraid.org
mooo.com
chickenkiller.com
us.to
freedns.afraid.org
dnsdynamic.org
dynds.org
// free hosting / blog zones (easily abused; FP analysis Section IV-D)
wordpress.com
blogspot.com
tumblr.com
weebly.com
tripod.com
angelfire.com
geocities.com
webs.com
yolasite.com
egloos.com
freehostia.com
sites.uol.com.br
interfree.it
xtgem.com
narod.ru
luxup.ru
ucoz.ru
altervista.org
site11.com
site40.net
site88.net
site90.net
host22.com
freeiz.com
comli.com
honor.es
hol.es
esy.es
vv.si
2kool4u.net
9k.com
000webhostapp.com
github.io
gitlab.io
netlify.app
herokuapp.com
appspot.com
cloudfront.net
s3.amazonaws.com
azurewebsites.net
firebaseapp.com
web.app
pages.dev
workers.dev
repl.co
glitch.me
surge.sh
neocities.org
)psl";
}

}  // namespace seg::dns
