#include "dns/query_log.h"

#include <cstring>
#include <fstream>

#include "util/csv.h"
#include "util/require.h"
#include "util/strings.h"

namespace seg::dns {

namespace {

constexpr char kBinaryMagic[] = "SEGTRC1";
constexpr std::size_t kMagicLength = sizeof(kBinaryMagic) - 1;

template <typename T>
void write_le(std::ostream& out, T value) {
  // Serialize explicitly little-endian, byte by byte, so files are
  // portable across hosts.
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    const auto byte = static_cast<unsigned char>(
        (static_cast<std::uint64_t>(value) >> (8 * i)) & 0xff);
    out.put(static_cast<char>(byte));
  }
}

template <typename T>
T read_le(std::istream& in) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    const int byte = in.get();
    util::require_data(byte != std::char_traits<char>::eof(),
                       "read_trace_binary: truncated file");
    value |= static_cast<std::uint64_t>(static_cast<unsigned char>(byte)) << (8 * i);
  }
  return static_cast<T>(value);
}

void write_string(std::ostream& out, std::string_view text) {
  util::require(text.size() <= 0xffff, "write_trace_binary: string too long");
  write_le<std::uint16_t>(out, static_cast<std::uint16_t>(text.size()));
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
}

std::string read_string(std::istream& in) {
  const auto length = read_le<std::uint16_t>(in);
  std::string text(length, '\0');
  in.read(text.data(), length);
  util::require_data(static_cast<std::size_t>(in.gcount()) == length,
                     "read_trace_binary: truncated string");
  return text;
}

}  // namespace

void write_trace(const DayTrace& trace, const std::string& path) {
  util::DsvWriter writer(path);
  writer.write_comment("day\tmachine\tqname\tresolved_ips");
  std::vector<std::string> row(4);
  for (const auto& record : trace.records) {
    row[0] = std::to_string(record.day);
    row[1] = record.machine;
    row[2] = record.qname;
    std::vector<std::string> ips;
    ips.reserve(record.resolved_ips.size());
    for (const auto ip : record.resolved_ips) {
      ips.push_back(ip.to_string());
    }
    row[3] = util::join(ips, ",");
    writer.write_row(row);
  }
}

DayTrace read_trace(const std::string& path) {
  util::DsvReader reader(path);
  DayTrace trace;
  bool first = true;
  std::vector<std::string_view> fields;
  while (reader.next(fields)) {
    util::require_data(fields.size() == 4,
                       "read_trace: expected 4 fields at line " +
                           std::to_string(reader.line_number()));
    QueryRecord record;
    record.day = static_cast<Day>(util::parse_u64(fields[0]));
    record.machine = std::string(fields[1]);
    record.qname = std::string(fields[2]);
    for (const auto ip_text : util::split_skip_empty(fields[3], ',')) {
      record.resolved_ips.push_back(IpV4::parse(ip_text));
    }
    if (first) {
      trace.day = record.day;
      first = false;
    } else {
      util::require_data(record.day == trace.day,
                         "read_trace: mixed days in one trace file at line " +
                             std::to_string(reader.line_number()));
    }
    trace.records.push_back(std::move(record));
  }
  return trace;
}


void write_trace_binary(const DayTrace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  util::require_data(out.is_open(), "write_trace_binary: cannot create '" + path + "'");
  out.write(kBinaryMagic, static_cast<std::streamsize>(kMagicLength));
  write_le<std::int32_t>(out, trace.day);
  write_le<std::uint64_t>(out, trace.records.size());
  for (const auto& record : trace.records) {
    write_string(out, record.machine);
    write_string(out, record.qname);
    util::require(record.resolved_ips.size() <= 0xff,
                  "write_trace_binary: too many resolved IPs in one record");
    write_le<std::uint8_t>(out, static_cast<std::uint8_t>(record.resolved_ips.size()));
    for (const auto ip : record.resolved_ips) {
      write_le<std::uint32_t>(out, ip.value());
    }
  }
  util::require_data(static_cast<bool>(out), "write_trace_binary: write failed");
}

DayTrace read_trace_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  util::require_data(in.is_open(), "read_trace_binary: cannot open '" + path + "'");
  char magic[kMagicLength];
  in.read(magic, static_cast<std::streamsize>(kMagicLength));
  util::require_data(static_cast<std::size_t>(in.gcount()) == kMagicLength &&
                         std::memcmp(magic, kBinaryMagic, kMagicLength) == 0,
                     "read_trace_binary: bad magic (not a SEGTRC1 file)");
  DayTrace trace;
  trace.day = read_le<std::int32_t>(in);
  const auto count = read_le<std::uint64_t>(in);
  trace.records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    QueryRecord record;
    record.day = trace.day;
    record.machine = read_string(in);
    record.qname = read_string(in);
    const auto ip_count = read_le<std::uint8_t>(in);
    record.resolved_ips.reserve(ip_count);
    for (std::uint8_t k = 0; k < ip_count; ++k) {
      record.resolved_ips.push_back(IpV4(read_le<std::uint32_t>(in)));
    }
    trace.records.push_back(std::move(record));
  }
  return trace;
}


Day for_each_record(const std::string& path,
                    const std::function<void(const QueryRecord&)>& callback) {
  if (path.ends_with(".bin")) {
    std::ifstream in(path, std::ios::binary);
    util::require_data(in.is_open(), "for_each_record: cannot open '" + path + "'");
    char magic[kMagicLength];
    in.read(magic, static_cast<std::streamsize>(kMagicLength));
    util::require_data(static_cast<std::size_t>(in.gcount()) == kMagicLength &&
                           std::memcmp(magic, kBinaryMagic, kMagicLength) == 0,
                       "for_each_record: bad magic (not a SEGTRC1 file)");
    const auto day = read_le<std::int32_t>(in);
    const auto count = read_le<std::uint64_t>(in);
    QueryRecord record;
    for (std::uint64_t i = 0; i < count; ++i) {
      record.day = day;
      record.machine = read_string(in);
      record.qname = read_string(in);
      record.resolved_ips.clear();
      const auto ip_count = read_le<std::uint8_t>(in);
      for (std::uint8_t k = 0; k < ip_count; ++k) {
        record.resolved_ips.push_back(IpV4(read_le<std::uint32_t>(in)));
      }
      callback(record);
    }
    return count == 0 ? Day{0} : day;
  }

  util::DsvReader reader(path);
  Day day = 0;
  bool first = true;
  std::vector<std::string_view> fields;
  QueryRecord record;
  while (reader.next(fields)) {
    util::require_data(fields.size() == 4,
                       "for_each_record: expected 4 fields at line " +
                           std::to_string(reader.line_number()));
    record.day = static_cast<Day>(util::parse_u64(fields[0]));
    record.machine = std::string(fields[1]);
    record.qname = std::string(fields[2]);
    record.resolved_ips.clear();
    for (const auto ip_text : util::split_skip_empty(fields[3], ',')) {
      record.resolved_ips.push_back(IpV4::parse(ip_text));
    }
    if (first) {
      day = record.day;
      first = false;
    } else {
      util::require_data(record.day == day,
                         "for_each_record: mixed days in one trace file at line " +
                             std::to_string(reader.line_number()));
    }
    callback(record);
  }
  return day;
}


BinaryTraceWriter::BinaryTraceWriter(const std::string& path, Day day, std::uint64_t count)
    : out_(path, std::ios::binary), expected_(count) {
  util::require_data(out_.is_open(), "BinaryTraceWriter: cannot create '" + path + "'");
  out_.write(kBinaryMagic, static_cast<std::streamsize>(kMagicLength));
  write_le<std::int32_t>(out_, day);
  write_le<std::uint64_t>(out_, count);
}

BinaryTraceWriter::~BinaryTraceWriter() {
  try {
    finish();
  } catch (...) {  // destructors must not throw; call finish() to observe
  }
}

void BinaryTraceWriter::add(std::string_view machine, std::string_view qname,
                            std::span<const IpV4> resolved_ips) {
  util::require(written_ < expected_, "BinaryTraceWriter: more records than declared");
  write_string(out_, machine);
  write_string(out_, qname);
  util::require(resolved_ips.size() <= 0xff,
                "BinaryTraceWriter: too many resolved IPs in one record");
  write_le<std::uint8_t>(out_, static_cast<std::uint8_t>(resolved_ips.size()));
  for (const auto ip : resolved_ips) {
    write_le<std::uint32_t>(out_, ip.value());
  }
  ++written_;
}

void BinaryTraceWriter::finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  util::require(written_ == expected_,
                "BinaryTraceWriter: record count mismatch with declared header count");
  out_.flush();
  util::require_data(static_cast<bool>(out_), "BinaryTraceWriter: write failed");
  out_.close();
}

}  // namespace seg::dns
