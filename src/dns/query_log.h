// DNS query-log records: the raw input Segugio consumes.
//
// Segugio monitors the DNS traffic between ISP customer machines and the
// ISP's local resolver, keeping only successful authoritative responses that
// map a queried domain to valid IP addresses (Section II-A1). A record is
// (day, machine identifier, queried FQDN, resolved IPs). Records can be
// carried in memory (DayTrace, what the simulator produces) or streamed
// to/from a TSV file for offline runs.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dns/ip.h"
#include "dns/types.h"

namespace seg::dns {

/// One resolved DNS query observed at the local resolver.
struct QueryRecord {
  Day day = 0;
  std::string machine;            ///< stable machine identifier (paper §III)
  std::string qname;              ///< queried fully-qualified domain name
  std::vector<IpV4> resolved_ips; ///< A-record answers

  friend bool operator==(const QueryRecord&, const QueryRecord&) = default;
};

/// All query records observed in one observation window T (one day in the
/// paper's deployments).
struct DayTrace {
  Day day = 0;
  std::vector<QueryRecord> records;
};

/// Writes a trace as TSV: day \t machine \t qname \t ip1,ip2,...
/// Throws util::ParseError when the file cannot be created.
void write_trace(const DayTrace& trace, const std::string& path);

/// Reads a trace previously written by write_trace. Throws util::ParseError
/// on malformed rows. All records must share one day, which becomes
/// trace.day (an empty file yields day 0 and no records).
DayTrace read_trace(const std::string& path);

/// Compact binary form (roughly 3-4x smaller than the TSV): little-endian,
/// length-prefixed strings, magic header "SEGTRC1". ISP-scale days run to
/// hundreds of millions of records, where the text format stops being
/// practical.
void write_trace_binary(const DayTrace& trace, const std::string& path);

/// Reads a trace written by write_trace_binary. Throws util::ParseError on
/// bad magic, truncation, or malformed records.
DayTrace read_trace_binary(const std::string& path);

/// Streams a trace file — text TSV, or SEGTRC1 binary when the path ends
/// in ".bin" — invoking `callback` once per record without materializing
/// the whole trace. Returns the trace day (0 for an empty file). Throws
/// util::ParseError on malformed input.
Day for_each_record(const std::string& path,
                    const std::function<void(const QueryRecord&)>& callback);

/// Streams SEGTRC1 binary traces record by record, for traces too large to
/// hold as a DayTrace (the record count must be known up front — the format
/// stores it in the header). add() must be called exactly `count` times
/// before finish(); finish() validates the stream and is implied by the
/// destructor (which swallows errors — call finish() to observe them).
class BinaryTraceWriter {
 public:
  BinaryTraceWriter(const std::string& path, Day day, std::uint64_t count);
  ~BinaryTraceWriter();
  BinaryTraceWriter(const BinaryTraceWriter&) = delete;
  BinaryTraceWriter& operator=(const BinaryTraceWriter&) = delete;

  void add(std::string_view machine, std::string_view qname,
           std::span<const IpV4> resolved_ips);
  void finish();

 private:
  std::ofstream out_;
  std::uint64_t expected_;
  std::uint64_t written_ = 0;
  bool finished_ = false;
};

}  // namespace seg::dns
