// Sharded history stores for the streaming pipeline.
//
// The F2/F3 features consult the activity index and the passive DNS
// database once per candidate domain; at ISP scale those lookups dominate
// feature extraction. These wrappers shard the serial stores by key hash
// and answer batched queries in parallel — one worker per shard slice —
// while keeping the serial classes as the single source of truth for
// semantics: every shard IS a serial store, and every answer is produced
// by the serial query code.
//
// Determinism contract: the shard count never affects answers (routing is
// a pure function of the key) and save() emits bytes identical to the
// serial store's save() for the same logical content (shards are merged
// and re-sorted before writing).
//
// Threading contract: query_batch() parallelizes internally and must only
// be called from the top level, never from inside a parallel_for body
// (both would contend for the shared pool; see util/parallel.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "dns/activity_index.h"
#include "dns/ip.h"
#include "dns/pdns.h"
#include "dns/types.h"

namespace seg::dns {

/// Domain activity history sharded by name hash. Facade over
/// DomainActivityIndex; answers are identical to a single serial index
/// holding the same observations, for every shard count.
class ShardedActivityIndex {
 public:
  /// One activity lookup: both F2 measurements for `name` in one pass.
  struct Query {
    std::string_view name;  ///< FQDN or e2LD; must outlive query_batch()
    Day from = 0;           ///< active-day window start (inclusive)
    Day to = 0;             ///< active-day window end (inclusive)
    Day ending = 0;         ///< day the consecutive streak must end on
  };
  struct Answer {
    int active_days = 0;
    int consecutive_days = 0;
  };

  explicit ShardedActivityIndex(std::size_t num_shards = kDefaultShards);

  /// Serial API (thin facade: routes to the owning shard).
  void mark_active(std::string_view name, Day day);
  int active_days(std::string_view name, Day from, Day to) const;
  int consecutive_days_ending(std::string_view name, Day day) const;
  std::optional<Day> first_seen(std::string_view name) const;
  std::size_t tracked_names() const;

  /// Answers every query in parallel. answers[i] corresponds to
  /// queries[i]. Top-level calls only (see threading contract above).
  std::vector<Answer> query_batch(std::span<const Query> queries) const;

  /// Folds a serial index's observations into the shards. Idempotent:
  /// absorbing the same index twice changes nothing.
  void absorb(const DomainActivityIndex& serial);

  /// Byte-identical to DomainActivityIndex::save() of the merged content.
  void save(std::ostream& out) const;
  /// Loads a (possibly legacy) serial stream and shards it.
  static ShardedActivityIndex load(std::istream& in, std::size_t num_shards = kDefaultShards);

  static constexpr std::size_t kDefaultShards = 16;

 private:
  std::size_t shard_of(std::string_view name) const;

  std::vector<DomainActivityIndex> shards_;
};

/// Passive DNS database sharded by /24-prefix hash, so an IP and its /24
/// always live in the same shard and one routing decision serves both the
/// per-IP and per-prefix F3 lookups. Facade over PassiveDnsDb.
class ShardedPassiveDnsDb {
 public:
  /// One F3 lookup: all four abuse flags for `ip` over [from, to].
  struct AbuseQuery {
    IpV4 ip;
    Day from = 0;
    Day to = 0;
  };
  struct AbuseAnswer {
    std::uint8_t ip_malware = 0;
    std::uint8_t ip_unknown = 0;
    std::uint8_t prefix_malware = 0;
    std::uint8_t prefix_unknown = 0;
  };

  explicit ShardedPassiveDnsDb(std::size_t num_shards = kDefaultShards);

  /// Serial API (thin facade: routes to the owning shard).
  void add_observation(Day day, IpV4 ip, PdnsAssociation kind);
  void add_resolution(Day day, std::span<const IpV4> ips, PdnsAssociation kind);
  bool ip_malware_associated(IpV4 ip, Day from, Day to) const;
  bool prefix_malware_associated(IpV4 ip, Day from, Day to) const;
  bool ip_unknown_associated(IpV4 ip, Day from, Day to) const;
  bool prefix_unknown_associated(IpV4 ip, Day from, Day to) const;
  std::size_t observation_count() const;
  std::size_t distinct_ip_count() const;

  /// Answers every query in parallel. answers[i] corresponds to
  /// queries[i]. Top-level calls only (see threading contract above).
  std::vector<AbuseAnswer> query_batch(std::span<const AbuseQuery> queries) const;

  /// Folds a serial database's day indexes into the shards. Idempotent on
  /// the indexes; observation_count() becomes max(current, serial count)
  /// so repeat absorbs of the same snapshot do not double-count.
  void absorb(const PassiveDnsDb& serial);

  /// Byte-identical to PassiveDnsDb::save() of the merged content.
  void save(std::ostream& out) const;
  /// Loads a (possibly legacy) serial stream and shards it.
  static ShardedPassiveDnsDb load(std::istream& in, std::size_t num_shards = kDefaultShards);

  static constexpr std::size_t kDefaultShards = 16;

 private:
  std::size_t shard_of(IpV4 ip) const;

  std::vector<PassiveDnsDb> shards_;
  std::size_t observations_ = 0;
};

}  // namespace seg::dns
