#include "dns/activity_index.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/require.h"
#include "util/serialize.h"

namespace seg::dns {

void DomainActivityIndex::mark_active(std::string_view name, Day day) {
  auto it = days_.find(name);
  if (it == days_.end()) {
    it = days_.emplace(std::string(name), std::vector<Day>{}).first;
  }
  auto& days = it->second;
  if (days.empty() || days.back() < day) {
    days.push_back(day);
    return;
  }
  if (days.back() == day) {
    return;
  }
  const auto pos = std::lower_bound(days.begin(), days.end(), day);
  if (pos == days.end() || *pos != day) {
    days.insert(pos, day);
  }
}

int DomainActivityIndex::active_days(std::string_view name, Day from, Day to) const {
  const auto it = days_.find(name);
  if (it == days_.end()) {
    return 0;
  }
  const auto& days = it->second;
  const auto lo = std::lower_bound(days.begin(), days.end(), from);
  const auto hi = std::upper_bound(days.begin(), days.end(), to);
  return static_cast<int>(hi - lo);
}

int DomainActivityIndex::consecutive_days_ending(std::string_view name, Day day) const {
  const auto it = days_.find(name);
  if (it == days_.end()) {
    return 0;
  }
  const auto& days = it->second;
  auto pos = std::lower_bound(days.begin(), days.end(), day);
  if (pos == days.end() || *pos != day) {
    return 0;
  }
  int count = 1;
  Day expected = day - 1;
  while (pos != days.begin()) {
    --pos;
    if (*pos != expected) {
      break;
    }
    ++count;
    --expected;
  }
  return count;
}

std::optional<Day> DomainActivityIndex::first_seen(std::string_view name) const {
  const auto it = days_.find(name);
  if (it == days_.end() || it->second.empty()) {
    return std::nullopt;
  }
  return it->second.front();
}

void DomainActivityIndex::visit(
    const std::function<void(std::string_view, std::span<const Day>)>& fn) const {
  for (const auto& [name, days] : days_) {
    fn(name, days);
  }
}

void DomainActivityIndex::save(std::ostream& out) const {
  util::write_format_header(out, "activity", kFormatVersion);
  // Serialize names in sorted order so identical indexes always produce
  // identical bytes; hash-table order would leak into the file otherwise.
  std::vector<std::string_view> names;
  names.reserve(days_.size());
  for (const auto& [name, days] : days_) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  out << "activity " << days_.size() << "\n";
  for (const auto name : names) {
    out << name;
    for (const auto day : days_.find(name)->second) {
      out << ' ' << day;
    }
    out << '\n';
  }
}

DomainActivityIndex DomainActivityIndex::load(std::istream& in) {
  // Headerless legacy streams parse identically: versions only differ in
  // the segf1 prefix so far.
  (void)util::read_format_header(in, "activity", kFormatVersion);
  std::string tag;
  std::size_t count = 0;
  in >> tag >> count;
  util::require_data(static_cast<bool>(in) && tag == "activity",
                     "DomainActivityIndex::load: malformed header");
  std::string line;
  std::getline(in, line);  // consume rest of header line
  DomainActivityIndex index;
  for (std::size_t i = 0; i < count; ++i) {
    util::require_data(static_cast<bool>(std::getline(in, line)),
                       "DomainActivityIndex::load: truncated file");
    std::istringstream fields(line);
    std::string name;
    fields >> name;
    util::require_data(!name.empty(), "DomainActivityIndex::load: empty name");
    Day day = 0;
    while (fields >> day) {
      index.mark_active(name, day);
    }
  }
  return index;
}

}  // namespace seg::dns
