// TraceSource: the pull-based record stream every ingestion path speaks.
//
// The pipeline used to eat one materialized DayTrace at a time; continuous
// deployment (paper §II-A: a tap below the ISP resolver, running for
// months) needs the inverse — a stream of records crossing day boundaries,
// in whatever format the tap produces. TraceSource is that seam: next()
// yields QueryRecords one at a time, and core::Pipeline::ingest_stream()
// cuts them into observation days. The legacy batch entry point survives
// as a thin adapter over DayTraceSource.
//
// Concrete sources:
//
//   DayTraceSource   borrows an in-memory DayTrace (the adapter substrate
//                    and the simulator's direct path).
//   FileTraceSource  opens a trace file in any supported format, sniffing
//                    the format from magic bytes unless told. Wire formats
//                    (dnstap, pcap) and the SEGTRC1 binlog are walked
//                    zero-copy over an mmap'd capture; the sim TSV streams
//                    through the DSV reader.
//
// Formats and their detection magic are documented in docs/FORMATS.md and
// docs/ingestion.md.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "dns/query_log.h"

namespace seg::dns {

/// The trace encodings FileTraceSource understands.
enum class TraceFormat {
  kSim,     ///< TSV from the simulator / write_trace
  kBinlog,  ///< SEGTRC1 binary (single- or multi-segment, one segment per day)
  kDnstap,  ///< frame-streams dnstap capture
  kPcap,    ///< classic pcap, UDP port-53 fast path
};

/// "sim", "binlog", "dnstap", "pcap".
std::string_view format_name(TraceFormat format);

/// Inverse of format_name(); throws util::ParseError on unknown names.
TraceFormat parse_format(std::string_view name);

/// Sniffs the format from the file's magic bytes: "SEGTRC1" → binlog, a
/// pcap magic → pcap, a leading frame-streams control escape (four zero
/// bytes) → dnstap, anything else (including an empty file) → sim TSV.
/// Throws util::ParseError when the file cannot be opened.
TraceFormat detect_format(const std::string& path);

/// A pull-based stream of query records, ordered by non-decreasing day.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Writes the next record into `record` and returns true, or returns
  /// false at end of stream. Throws util::ParseError on malformed input.
  virtual bool next(QueryRecord& record) = 0;

  /// Well-formed but filtered messages so far (wire sources only; in-memory
  /// and text sources never filter).
  virtual std::uint64_t skipped() const { return 0; }
};

/// Streams a borrowed DayTrace (which must outlive the source).
class DayTraceSource final : public TraceSource {
 public:
  explicit DayTraceSource(const DayTrace& trace) : trace_(&trace) {}

  bool next(QueryRecord& record) override {
    if (index_ >= trace_->records.size()) {
      return false;
    }
    record = trace_->records[index_++];
    return true;
  }

 private:
  const DayTrace* trace_;
  std::size_t index_ = 0;
};

/// Streams a trace file in any supported format. Wire formats and the
/// binlog are parsed zero-copy from a private mapping of the file.
class FileTraceSource final : public TraceSource {
 public:
  /// Opens `path`, sniffing the format via detect_format().
  explicit FileTraceSource(const std::string& path);

  /// Opens `path` as `format` (what `--format` on the CLI forces).
  FileTraceSource(const std::string& path, TraceFormat format);

  ~FileTraceSource() override;
  FileTraceSource(const FileTraceSource&) = delete;
  FileTraceSource& operator=(const FileTraceSource&) = delete;

  bool next(QueryRecord& record) override;

  TraceFormat format() const { return format_; }

  /// Well-formed but filtered wire messages (queries, non-INET, no A
  /// records); always 0 for sim/binlog.
  std::uint64_t skipped() const override;

 private:
  struct Impl;
  TraceFormat format_;
  std::unique_ptr<Impl> impl_;
};

/// Reads a whole source into per-day traces — the bridge back to batch
/// tooling. `on_day` fires once per day, in stream order. Returns the
/// total record count. Throws util::ParseError when days go backwards.
std::uint64_t collect_days(TraceSource& source,
                           const std::function<void(DayTrace&&)>& on_day);

}  // namespace seg::dns
