// Shared primitive types for the DNS substrate.
#pragma once

#include <cstdint>

namespace seg::dns {

/// Day index. Experiments use days relative to an arbitrary epoch (the
/// simulator's day 0); all windows in the paper (n = 14 days of activity
/// history, W = 5 months of pDNS history) are expressed in these units.
using Day = std::int32_t;

/// Number of days in the paper's pDNS history window W (~5 months).
inline constexpr Day kDefaultPdnsWindowDays = 150;

/// Number of days in the paper's domain-activity window n.
inline constexpr Day kDefaultActivityWindowDays = 14;

}  // namespace seg::dns
