#include "dns/wire/dns_message.h"

#include "dns/wire/bytes.h"
#include "util/require.h"

namespace seg::dns::wire {

namespace {

constexpr std::size_t kMaxNameBytes = 255;  // RFC 1035 §2.3.4
constexpr std::size_t kMaxLabelBytes = 63;
constexpr std::size_t kMaxPointerJumps = 32;  // far above any legal chain
constexpr std::uint16_t kOptRrType = 41;      // EDNS0 OPT pseudo-RR (RFC 6891)

// Decodes a (possibly compressed) domain name starting at the cursor,
// appending dotted labels to `out`. The cursor ends just past the name's
// in-place bytes (a pointer terminates the in-place encoding).
void read_name(ByteCursor& cursor, std::string& out) {
  out.clear();
  std::size_t jumps = 0;
  // After the first compression pointer we walk the message at `offset`
  // through the cursor's bounds-checked random access (u8_at / view_at) —
  // the cursor's own position already advanced past the 2-byte pointer and
  // must not move again.
  std::size_t offset = 0;
  bool jumped = false;
  std::size_t name_bytes = 0;
  while (true) {
    const std::uint8_t len =
        jumped ? cursor.u8_at(offset++, "dns name") : cursor.u8("dns name");
    if ((len & 0xc0) == 0xc0) {
      // Compression pointer: 14-bit offset into the message.
      const std::uint8_t low = jumped ? cursor.u8_at(offset++, "dns name pointer")
                                      : cursor.u8("dns name pointer");
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3f) << 8) | low;
      util::require_data(target < cursor.size(),
                         "dns name: compression pointer out of range");
      util::require_data(++jumps <= kMaxPointerJumps, "dns name: compression pointer loop");
      offset = target;
      jumped = true;
      continue;
    }
    util::require_data((len & 0xc0) == 0, "dns name: reserved label type");
    if (len == 0) {
      return;  // root: name complete
    }
    util::require_data(len <= kMaxLabelBytes, "dns name: label longer than 63 bytes");
    name_bytes += len + 1;
    util::require_data(name_bytes <= kMaxNameBytes, "dns name: name longer than 255 bytes");
    std::span<const unsigned char> label;
    if (!jumped) {
      label = cursor.take(len, "dns name label");
    } else {
      label = cursor.view_at(offset, len, "dns name label");
      offset += len;
    }
    if (!out.empty()) {
      out.push_back('.');
    }
    out.append(reinterpret_cast<const char*>(label.data()), label.size());
  }
}

// Walks one resource record, collecting A/IN rdata into `summary`.
void read_resource_record(ByteCursor& cursor, std::string& scratch_name,
                          DnsSummary* summary) {
  read_name(cursor, scratch_name);
  const auto rr_type = cursor.u16be("rr type");
  const auto rr_class = cursor.u16be("rr class");
  cursor.skip(4, "rr ttl");
  const auto rdlength = cursor.u16be("rr rdlength");
  const auto rdata = cursor.take(rdlength, "rr rdata");
  if (summary != nullptr && rr_type == 1 && rr_class == 1) {  // A, IN
    util::require_data(rdlength == 4, "dns A record: rdlength != 4");
    summary->a_records.push_back(
        IpV4::from_octets(rdata[0], rdata[1], rdata[2], rdata[3]));
  }
}

}  // namespace

DnsSummary summarize(std::span<const unsigned char> message) {
  ByteCursor cursor(message);
  DnsSummary summary;
  cursor.skip(2, "dns header id");
  const auto flags = cursor.u16be("dns header flags");
  summary.is_response = (flags & 0x8000) != 0;
  summary.rcode = static_cast<std::uint8_t>(flags & 0x000f);
  const auto qdcount = cursor.u16be("dns header qdcount");
  const auto ancount = cursor.u16be("dns header ancount");
  const auto nscount = cursor.u16be("dns header nscount");
  const auto arcount = cursor.u16be("dns header arcount");

  std::string scratch;
  for (std::uint16_t q = 0; q < qdcount; ++q) {
    read_name(cursor, scratch);
    cursor.skip(4, "dns question type/class");
    if (q == 0) {
      summary.qname = scratch;
    }
  }
  for (std::uint16_t a = 0; a < ancount; ++a) {
    read_resource_record(cursor, scratch, &summary);
  }
  // Authority must still parse — a capture that lies about its counts or
  // truncates mid-record is rejected, not silently accepted.
  for (std::uint16_t r = 0; r < nscount; ++r) {
    read_resource_record(cursor, scratch, nullptr);
  }
  for (std::uint16_t r = 0; r < arcount; ++r) {
    // EDNS0 OPT pseudo-RRs (RFC 6891, type 41) carry resolver capability
    // bits Segugio never reads, and real captures routinely truncate them
    // (snap length). They are skipped leniently and counted; a malformed
    // OPT ends the additional section instead of rejecting the message.
    // Every other additional record stays strict.
    read_name(cursor, scratch);
    const auto rr_type = cursor.u16be("rr type");
    if (rr_type == kOptRrType) {
      if (cursor.remaining() < 8) {  // class(2) + ttl(4) + rdlength(2)
        ++summary.opt_skipped;
        break;
      }
      cursor.skip(2, "opt udp size");
      cursor.skip(4, "opt extended rcode/flags");
      const auto rdlength = cursor.u16be("opt rdlength");
      if (rdlength > cursor.remaining()) {
        ++summary.opt_skipped;
        break;
      }
      cursor.skip(rdlength, "opt rdata");
      ++summary.opt_records;
      continue;
    }
    const auto rr_class = cursor.u16be("rr class");
    (void)rr_class;
    cursor.skip(4, "rr ttl");
    const auto rdlength = cursor.u16be("rr rdlength");
    cursor.skip(rdlength, "rr rdata");
  }
  return summary;
}

std::vector<unsigned char> encode_response(std::string_view qname,
                                           std::span<const IpV4> a_records,
                                           std::uint16_t id) {
  util::require(a_records.size() <= 0xffff, "encode_response: too many answers");
  std::vector<unsigned char> out;
  const auto push16 = [&out](std::uint16_t value) {
    out.push_back(static_cast<unsigned char>(value >> 8));
    out.push_back(static_cast<unsigned char>(value & 0xff));
  };
  const auto push_name = [&out, qname] {
    std::size_t start = 0;
    while (start <= qname.size()) {
      const auto dot = qname.find('.', start);
      const auto end = dot == std::string_view::npos ? qname.size() : dot;
      const auto label = qname.substr(start, end - start);
      util::require(label.size() <= kMaxLabelBytes,
                    "encode_response: label longer than 63 bytes");
      if (!label.empty()) {
        out.push_back(static_cast<unsigned char>(label.size()));
        out.insert(out.end(), label.begin(), label.end());
      }
      if (dot == std::string_view::npos) {
        break;
      }
      start = dot + 1;
    }
    out.push_back(0);  // root
  };

  push16(id);
  push16(0x8180);  // QR=1, RD=1, RA=1, NOERROR
  push16(1);       // qdcount
  push16(static_cast<std::uint16_t>(a_records.size()));
  push16(0);  // nscount
  push16(0);  // arcount
  push_name();
  push16(1);  // QTYPE A
  push16(1);  // QCLASS IN
  for (const auto ip : a_records) {
    push_name();
    push16(1);  // A
    push16(1);  // IN
    push16(0);  // TTL high
    push16(60); // TTL low: 60s
    push16(4);  // rdlength
    const auto value = ip.value();
    out.push_back(static_cast<unsigned char>(value >> 24));
    out.push_back(static_cast<unsigned char>((value >> 16) & 0xff));
    out.push_back(static_cast<unsigned char>((value >> 8) & 0xff));
    out.push_back(static_cast<unsigned char>(value & 0xff));
  }
  return out;
}

}  // namespace seg::dns::wire
