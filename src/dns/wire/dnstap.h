// dnstap capture files: frame-streams framing + the Dnstap protobuf
// subset Segugio needs, hand-decoded (no protobuf dependency).
//
// dnstap (https://dnstap.info) is the de-facto resolver tap format: BIND,
// Unbound, Knot and PowerDNS all emit it. On disk it is a frame-streams
// stream — 4-byte big-endian length-prefixed frames, with length 0
// escaping a control frame (START carries the content type
// "protobuf:dnstap.Dnstap", STOP ends the stream) — where every data
// frame is one encoded `dnstap.Dnstap` protobuf message.
//
// The reader walks the mapped capture zero-copy (frames and protobuf
// fields are borrowed subspans; only the record's strings are
// materialized) and keeps exactly what the paper's deployment model needs
// (§II-A): CLIENT_RESPONSE messages over INET whose embedded DNS response
// resolved at least one A record. The client address is the machine
// identifier — in a live tap the resolver sees clients by IP — and the
// observation day is response_time_sec / 86400 (days since the Unix
// epoch, the same arbitrary-epoch convention the rest of the repo uses).
//
// Structural damage — truncated or oversized frames, a missing START
// frame, a foreign content type, malformed protobuf or DNS payloads —
// throws util::ParseError. Messages that are merely uninteresting
// (queries, non-INET, no A records) are skipped and counted.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "dns/query_log.h"

namespace seg::dns::wire {

/// Frames larger than this are rejected as corrupt (dnstap implementations
/// cap frames far below this; a longer length prefix means a desynced or
/// damaged stream).
inline constexpr std::uint32_t kMaxDnstapFrameBytes = 1u << 20;

/// The frame-streams content type a dnstap capture must declare.
inline constexpr std::string_view kDnstapContentType = "protobuf:dnstap.Dnstap";

/// Incremental dnstap reader over a borrowed capture buffer (the caller
/// keeps the mapping alive; FileTraceSource pairs one with a
/// util::MmapFile).
class DnstapReader {
 public:
  /// Validates the leading START control frame. Throws util::ParseError.
  explicit DnstapReader(std::span<const unsigned char> capture);

  /// Decodes frames until one yields a usable record (written to `record`)
  /// or the stream ends (returns false after the STOP frame or clean EOF).
  /// Throws util::ParseError on structural damage.
  bool next(QueryRecord& record);

  /// Data frames whose message was well-formed but filtered (queries,
  /// non-INET sockets, responses without A records).
  std::uint64_t skipped() const { return skipped_; }

 private:
  std::span<const unsigned char> data_;
  std::size_t pos_ = 0;
  bool stopped_ = false;
  std::uint64_t skipped_ = 0;
};

/// Writes `trace` as a dnstap capture (START frame, one CLIENT_RESPONSE
/// Dnstap message per record, STOP frame). Machine identifiers that parse
/// as dotted quads become the client address verbatim; any other spelling
/// is mapped deterministically into 10.0.0.0/8 by hash — wire formats
/// identify clients by address, so non-address identifiers cannot round-
/// trip (use the binlog format when they must). Throws util::ParseError
/// when the file cannot be written.
void write_dnstap_trace(const DayTrace& trace, const std::string& path);

/// The deterministic machine-name → client-address mapping used by
/// write_dnstap_trace / write_pcap_trace for non-address identifiers.
IpV4 machine_address(std::string_view machine);

}  // namespace seg::dns::wire
