// Minimal DNS wire-message codec (RFC 1035 subset).
//
// The ingestion front end only needs the fields Segugio's QueryRecord
// carries (paper §II-A1): the queried name and the A-record answers of a
// successful response. summarize() extracts exactly that from a raw DNS
// message — header, first question, answer section with name-compression
// support — and nothing else; authority/additional sections are skipped
// structurally (they must still be well-formed, so corrupt captures fail
// loudly instead of yielding half-parsed records). The one deliberate
// leniency: EDNS0 OPT pseudo-RRs (RFC 6891) in the additional section are
// skipped and counted even when truncated by the capture's snap length —
// a malformed OPT ends the additional section, it does not reject the
// message (opt_records / opt_skipped in the summary).
//
// Structural malformation (truncation, compression-pointer loops, label
// overflow) throws util::ParseError; semantically uninteresting messages
// (queries, NXDOMAIN, answers without A records) parse fine and are
// filtered by the caller via the summary fields.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dns/ip.h"

namespace seg::dns::wire {

/// What the resolver said, reduced to Segugio's needs.
struct DnsSummary {
  bool is_response = false;   ///< QR bit
  std::uint8_t rcode = 0;     ///< 0 = NOERROR
  std::string qname;          ///< first question, dotted form, no trailing dot
  std::vector<IpV4> a_records;  ///< A/IN rdata from the answer section
  /// EDNS0 OPT pseudo-RRs (RFC 6891, type 41) in the additional section:
  /// well-formed ones skipped, plus malformed/truncated ones that ended the
  /// additional section leniently instead of rejecting the message.
  std::uint32_t opt_records = 0;
  std::uint32_t opt_skipped = 0;
};

/// Parses one DNS message. Throws util::ParseError on malformed wire data.
DnsSummary summarize(std::span<const unsigned char> message);

/// Encodes a well-formed NOERROR response for `qname` with one A record
/// per address (uncompressed). The capture writers and tests use this; a
/// real deployment only ever decodes.
std::vector<unsigned char> encode_response(std::string_view qname,
                                           std::span<const IpV4> a_records,
                                           std::uint16_t id = 0);

}  // namespace seg::dns::wire
