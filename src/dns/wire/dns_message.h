// Minimal DNS wire-message codec (RFC 1035 subset).
//
// The ingestion front end only needs the fields Segugio's QueryRecord
// carries (paper §II-A1): the queried name and the A-record answers of a
// successful response. summarize() extracts exactly that from a raw DNS
// message — header, first question, answer section with name-compression
// support — and nothing else; authority/additional sections are skipped
// structurally (they must still be well-formed, so corrupt captures fail
// loudly instead of yielding half-parsed records).
//
// Structural malformation (truncation, compression-pointer loops, label
// overflow) throws util::ParseError; semantically uninteresting messages
// (queries, NXDOMAIN, answers without A records) parse fine and are
// filtered by the caller via the summary fields.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dns/ip.h"

namespace seg::dns::wire {

/// What the resolver said, reduced to Segugio's needs.
struct DnsSummary {
  bool is_response = false;   ///< QR bit
  std::uint8_t rcode = 0;     ///< 0 = NOERROR
  std::string qname;          ///< first question, dotted form, no trailing dot
  std::vector<IpV4> a_records;  ///< A/IN rdata from the answer section
};

/// Parses one DNS message. Throws util::ParseError on malformed wire data.
DnsSummary summarize(std::span<const unsigned char> message);

/// Encodes a well-formed NOERROR response for `qname` with one A record
/// per address (uncompressed). The capture writers and tests use this; a
/// real deployment only ever decodes.
std::vector<unsigned char> encode_response(std::string_view qname,
                                           std::span<const IpV4> a_records,
                                           std::uint16_t id = 0);

}  // namespace seg::dns::wire
