// Classic pcap captures, reduced to the UDP port-53 fast path.
//
// A resolver-adjacent tap (the paper's vantage point, §II-A: "below" the
// ISP's recursive resolvers) sees DNS as plain UDP datagrams, so the
// reader implements exactly that slice of pcap: the classic file header
// (both byte orders, microsecond and nanosecond magics), Ethernet
// (including one 802.1Q VLAN tag) and raw-IP link types, IPv4 without
// fragmentation, UDP with source port 53 (responses flow from the
// resolver to the client). Everything else — ARP, IPv6, TCP, fragments,
// other ports — is skipped and counted, never an error; a port-mirror
// tap carries plenty of traffic that is not DNS.
//
// Structural damage (bad magic, truncated packet records, a capture
// header promising more bytes than the file holds) throws
// util::ParseError.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "dns/query_log.h"

namespace seg::dns::wire {

/// Packet records longer than this are rejected as corrupt (far above any
/// real snaplen; a longer incl_len means a desynced capture).
inline constexpr std::uint32_t kMaxPcapPacketBytes = 1u << 16;

/// Incremental reader over a borrowed classic-pcap capture buffer.
class PcapReader {
 public:
  /// Validates the 24-byte global header. Throws util::ParseError.
  explicit PcapReader(std::span<const unsigned char> capture);

  /// Walks packet records until one yields a usable record (a UDP port-53
  /// response resolving at least one A record) or the capture ends.
  /// Throws util::ParseError on structural damage.
  bool next(QueryRecord& record);

  /// Packets that were well-formed but not Segugio-relevant (non-IPv4,
  /// non-UDP, wrong port, queries, responses without A records).
  std::uint64_t skipped() const { return skipped_; }

  /// EDNS0 OPT pseudo-RRs encountered across the capture's UDP/53
  /// messages: well-formed ones skipped, and malformed/truncated ones
  /// tolerated leniently (see dns_message.h).
  std::uint64_t opt_records() const { return opt_records_; }
  std::uint64_t opt_skipped() const { return opt_skipped_; }

 private:
  std::span<const unsigned char> data_;
  std::size_t pos_ = 0;
  bool swapped_ = false;   // capture byte order != file byte order
  std::uint32_t linktype_ = 0;
  std::uint64_t skipped_ = 0;
  std::uint64_t opt_records_ = 0;
  std::uint64_t opt_skipped_ = 0;
};

/// Writes `trace` as a classic pcap capture (microsecond magic, Ethernet
/// link type, one UDP port-53 response datagram per record addressed to
/// the machine's client address — see machine_address() in dnstap.h for
/// the identifier mapping). Throws util::ParseError when the file cannot
/// be written.
void write_pcap_trace(const DayTrace& trace, const std::string& path);

}  // namespace seg::dns::wire
