#include "dns/wire/dnstap.h"

#include <fstream>

#include "dns/wire/bytes.h"
#include "dns/wire/dns_message.h"
#include "util/hash.h"
#include "util/require.h"

namespace seg::dns::wire {

namespace {

// frame-streams control frame types (fstrm/control.h).
constexpr std::uint32_t kControlStart = 0x02;
constexpr std::uint32_t kControlStop = 0x03;
constexpr std::uint32_t kControlFieldContentType = 0x01;

// dnstap.proto field numbers.
constexpr std::uint32_t kDnstapTypeField = 15;     // varint, MESSAGE = 1
constexpr std::uint32_t kDnstapMessageField = 14;  // embedded Message
constexpr std::uint32_t kMsgTypeField = 1;         // varint, CLIENT_RESPONSE = 6
constexpr std::uint32_t kMsgSocketFamilyField = 2;  // varint, INET = 1
constexpr std::uint32_t kMsgQueryAddressField = 4;  // bytes (client address)
constexpr std::uint32_t kMsgResponseTimeSecField = 11;  // varint
constexpr std::uint32_t kMsgResponseMessageField = 13;  // bytes (DNS wire)

constexpr std::uint64_t kDnstapTypeMessage = 1;
constexpr std::uint64_t kMsgTypeClientResponse = 6;
constexpr std::uint64_t kSocketFamilyInet = 1;

constexpr std::int64_t kSecondsPerDay = 86400;

// --- protobuf wire helpers -------------------------------------------------

std::uint64_t read_varint(ByteCursor& cursor) {
  std::uint64_t value = 0;
  for (std::size_t shift = 0; shift < 64; shift += 7) {
    const auto byte = cursor.u8("protobuf varint");
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return value;
    }
  }
  throw util::ParseError("protobuf varint: longer than 10 bytes");
}

struct ProtoField {
  std::uint32_t number = 0;
  std::uint64_t varint = 0;                  // wire type 0
  std::span<const unsigned char> bytes;      // wire type 2
  bool is_varint = false;
  bool is_bytes = false;
};

// Reads one field, skipping fixed32/fixed64 payloads it does not model.
ProtoField read_field(ByteCursor& cursor) {
  ProtoField field;
  const auto key = read_varint(cursor);
  field.number = static_cast<std::uint32_t>(key >> 3);
  util::require_data(field.number != 0, "protobuf: field number 0");
  switch (key & 0x7) {
    case 0:
      field.varint = read_varint(cursor);
      field.is_varint = true;
      break;
    case 1:
      cursor.skip(8, "protobuf fixed64");
      break;
    case 2: {
      const auto length = read_varint(cursor);
      util::require_data(length <= cursor.remaining(),
                         "protobuf length-delimited field: truncated");
      field.bytes = cursor.take(static_cast<std::size_t>(length), "protobuf bytes");
      field.is_bytes = true;
      break;
    }
    case 5:
      cursor.skip(4, "protobuf fixed32");
      break;
    default:
      throw util::ParseError("protobuf: unsupported wire type " +
                             std::to_string(key & 0x7));
  }
  return field;
}

void append_varint(std::vector<unsigned char>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<unsigned char>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<unsigned char>(value));
}

void append_key(std::vector<unsigned char>& out, std::uint32_t field,
                std::uint32_t wire_type) {
  append_varint(out, (static_cast<std::uint64_t>(field) << 3) | wire_type);
}

void append_bytes_field(std::vector<unsigned char>& out, std::uint32_t field,
                        std::span<const unsigned char> bytes) {
  append_key(out, field, 2);
  append_varint(out, bytes.size());
  out.insert(out.end(), bytes.begin(), bytes.end());
}

// --- decoded dnstap message ------------------------------------------------

struct DecodedMessage {
  std::uint64_t type = 0;
  std::uint64_t socket_family = 0;
  std::uint64_t response_time_sec = 0;
  std::span<const unsigned char> query_address;
  std::span<const unsigned char> response_message;
};

DecodedMessage decode_message(std::span<const unsigned char> payload) {
  DecodedMessage message;
  ByteCursor cursor(payload);
  while (!cursor.done()) {
    const auto field = read_field(cursor);
    if (field.is_varint && field.number == kMsgTypeField) {
      message.type = field.varint;
    } else if (field.is_varint && field.number == kMsgSocketFamilyField) {
      message.socket_family = field.varint;
    } else if (field.is_varint && field.number == kMsgResponseTimeSecField) {
      message.response_time_sec = field.varint;
    } else if (field.is_bytes && field.number == kMsgQueryAddressField) {
      message.query_address = field.bytes;
    } else if (field.is_bytes && field.number == kMsgResponseMessageField) {
      message.response_message = field.bytes;
    }
  }
  return message;
}

std::string address_to_string(std::span<const unsigned char> address) {
  return IpV4::from_octets(address[0], address[1], address[2], address[3]).to_string();
}

}  // namespace

DnstapReader::DnstapReader(std::span<const unsigned char> capture) {
  data_ = capture;
  ByteCursor cursor(data_);
  const auto escape = cursor.u32be("frame-streams escape");
  util::require_data(escape == 0, "dnstap: stream does not start with a control frame");
  const auto control_len = cursor.u32be("frame-streams control length");
  util::require_data(control_len >= 4 && control_len <= kMaxDnstapFrameBytes,
                     "dnstap: implausible control frame length");
  ByteCursor control(cursor.take(control_len, "frame-streams control frame"));
  const auto control_type = control.u32be("control frame type");
  util::require_data(control_type == kControlStart,
                     "dnstap: first control frame is not START");
  while (!control.done()) {
    const auto field_type = control.u32be("control field type");
    const auto field_len = control.u32be("control field length");
    const auto field = control.take(field_len, "control field payload");
    if (field_type == kControlFieldContentType) {
      const std::string_view content(reinterpret_cast<const char*>(field.data()),
                                     field.size());
      util::require_data(content == kDnstapContentType,
                         "dnstap: foreign content type '" + std::string(content) + "'");
    }
  }
  pos_ = cursor.pos();
}

bool DnstapReader::next(QueryRecord& record) {
  while (!stopped_) {
    ByteCursor cursor(data_.subspan(pos_));
    if (cursor.done()) {
      return false;  // clean EOF without STOP: accepted (live taps get cut)
    }
    const auto length = cursor.u32be("frame length");
    if (length == 0) {
      // Control frame: STOP ends the stream; anything else mid-stream is
      // tolerated if well-formed (fstrm READY/ACCEPT never hit files).
      const auto control_len = cursor.u32be("control frame length");
      util::require_data(control_len >= 4 && control_len <= kMaxDnstapFrameBytes,
                         "dnstap: implausible control frame length");
      ByteCursor control(cursor.take(control_len, "control frame"));
      const auto control_type = control.u32be("control frame type");
      pos_ += cursor.pos();
      if (control_type == kControlStop) {
        stopped_ = true;
        return false;
      }
      continue;
    }
    util::require_data(length <= kMaxDnstapFrameBytes,
                       "dnstap: oversized frame (" + std::to_string(length) + " bytes)");
    const auto frame = cursor.take(length, "dnstap data frame");
    pos_ += cursor.pos();

    // Decode the Dnstap envelope, then the embedded Message.
    std::span<const unsigned char> message_payload;
    std::uint64_t dnstap_type = kDnstapTypeMessage;
    ByteCursor envelope(frame);
    while (!envelope.done()) {
      const auto field = read_field(envelope);
      if (field.is_varint && field.number == kDnstapTypeField) {
        dnstap_type = field.varint;
      } else if (field.is_bytes && field.number == kDnstapMessageField) {
        message_payload = field.bytes;
      }
    }
    if (dnstap_type != kDnstapTypeMessage || message_payload.empty()) {
      ++skipped_;
      continue;
    }
    const auto message = decode_message(message_payload);
    if (message.type != kMsgTypeClientResponse ||
        message.socket_family != kSocketFamilyInet ||
        message.query_address.size() != 4 || message.response_message.empty()) {
      ++skipped_;
      continue;
    }
    const auto summary = summarize(message.response_message);
    if (!summary.is_response || summary.rcode != 0 || summary.qname.empty() ||
        summary.a_records.empty()) {
      ++skipped_;
      continue;
    }
    record.day = static_cast<Day>(static_cast<std::int64_t>(message.response_time_sec) /
                                  kSecondsPerDay);
    record.machine = address_to_string(message.query_address);
    record.qname = summary.qname;
    record.resolved_ips = summary.a_records;
    return true;
  }
  return false;
}

IpV4 machine_address(std::string_view machine) {
  // Dotted quads pass through so live-shaped identifiers round-trip.
  bool looks_numeric = !machine.empty();
  for (const char c : machine) {
    if (c != '.' && (c < '0' || c > '9')) {
      looks_numeric = false;
      break;
    }
  }
  if (looks_numeric) {
    try {
      return IpV4::parse(machine);
    } catch (const util::ParseError&) {
      // fall through to the hashed mapping
    }
  }
  const auto hash = util::fnv1a64(machine);
  return IpV4::from_octets(10, static_cast<std::uint8_t>(hash >> 16),
                           static_cast<std::uint8_t>(hash >> 8),
                           static_cast<std::uint8_t>(hash));
}

void write_dnstap_trace(const DayTrace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  util::require_data(out.is_open(), "write_dnstap_trace: cannot create '" + path + "'");
  const auto write_u32be = [&out](std::uint32_t value) {
    const unsigned char bytes[4] = {static_cast<unsigned char>(value >> 24),
                                    static_cast<unsigned char>((value >> 16) & 0xff),
                                    static_cast<unsigned char>((value >> 8) & 0xff),
                                    static_cast<unsigned char>(value & 0xff)};
    out.write(reinterpret_cast<const char*>(bytes), 4);
  };

  // START control frame with the dnstap content type.
  const std::string_view content = kDnstapContentType;
  write_u32be(0);
  write_u32be(static_cast<std::uint32_t>(4 + 4 + 4 + content.size()));
  write_u32be(kControlStart);
  write_u32be(kControlFieldContentType);
  write_u32be(static_cast<std::uint32_t>(content.size()));
  out.write(content.data(), static_cast<std::streamsize>(content.size()));

  std::vector<unsigned char> message;
  std::vector<unsigned char> envelope;
  for (const auto& record : trace.records) {
    const auto address = machine_address(record.machine);
    const auto payload = encode_response(record.qname, record.resolved_ips);

    message.clear();
    append_key(message, kMsgTypeField, 0);
    append_varint(message, kMsgTypeClientResponse);
    append_key(message, kMsgSocketFamilyField, 0);
    append_varint(message, kSocketFamilyInet);
    const auto value = address.value();
    const unsigned char addr_bytes[4] = {static_cast<unsigned char>(value >> 24),
                                         static_cast<unsigned char>((value >> 16) & 0xff),
                                         static_cast<unsigned char>((value >> 8) & 0xff),
                                         static_cast<unsigned char>(value & 0xff)};
    append_bytes_field(message, kMsgQueryAddressField,
                       std::span<const unsigned char>(addr_bytes, 4));
    append_key(message, kMsgResponseTimeSecField, 0);
    append_varint(message,
                  static_cast<std::uint64_t>(static_cast<std::int64_t>(record.day) *
                                             kSecondsPerDay));
    append_bytes_field(message, kMsgResponseMessageField, payload);

    envelope.clear();
    append_key(envelope, kDnstapTypeField, 0);
    append_varint(envelope, kDnstapTypeMessage);
    append_bytes_field(envelope, kDnstapMessageField, message);

    write_u32be(static_cast<std::uint32_t>(envelope.size()));
    out.write(reinterpret_cast<const char*>(envelope.data()),
              static_cast<std::streamsize>(envelope.size()));
  }

  // STOP control frame.
  write_u32be(0);
  write_u32be(4);
  write_u32be(kControlStop);
  util::require_data(static_cast<bool>(out), "write_dnstap_trace: write failed");
}

}  // namespace seg::dns::wire
