#include "dns/wire/pcap.h"

#include <fstream>

#include "dns/wire/bytes.h"
#include "dns/wire/dns_message.h"
#include "dns/wire/dnstap.h"
#include "util/require.h"

namespace seg::dns::wire {

namespace {

constexpr std::uint32_t kMagicMicros = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNanos = 0xa1b23c4d;
constexpr std::uint32_t kMagicMicrosSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNanosSwapped = 0x4d3cb2a1;

constexpr std::uint32_t kLinktypeEthernet = 1;
constexpr std::uint32_t kLinktypeRaw = 101;

constexpr std::uint16_t kEthertypeIpv4 = 0x0800;
constexpr std::uint16_t kEthertypeVlan = 0x8100;

constexpr std::int64_t kSecondsPerDay = 86400;

std::uint32_t read_u32(ByteCursor& cursor, bool swapped, std::string_view what) {
  return swapped ? cursor.u32be(what) : cursor.u32le(what);
}

// Strips link/IP/UDP headers from one captured packet, returning the DNS
// payload of a source-port-53 UDP datagram plus the destination (client)
// address — or an empty span when the packet is well-formed but not DNS.
struct Datagram {
  std::span<const unsigned char> dns;
  IpV4 client;
};

Datagram strip_headers(std::span<const unsigned char> packet, std::uint32_t linktype) {
  Datagram out;
  ByteCursor cursor(packet);
  if (linktype == kLinktypeEthernet) {
    cursor.skip(12, "ethernet addresses");
    auto ethertype = cursor.u16be("ethertype");
    if (ethertype == kEthertypeVlan) {
      cursor.skip(2, "vlan tag");
      ethertype = cursor.u16be("ethertype");
    }
    if (ethertype != kEthertypeIpv4) {
      return out;
    }
  }
  // IPv4 header.
  const auto version_ihl = cursor.u8("ip version/ihl");
  if ((version_ihl >> 4) != 4) {
    return out;
  }
  const std::size_t ihl = static_cast<std::size_t>(version_ihl & 0x0f) * 4;
  util::require_data(ihl >= 20, "pcap: ipv4 header length below 20 bytes");
  cursor.skip(1, "ip tos");
  const auto total_length = cursor.u16be("ip total length");
  util::require_data(total_length >= ihl, "pcap: ipv4 total length below header length");
  cursor.skip(2, "ip id");
  const auto flags_frag = cursor.u16be("ip flags/fragment offset");
  if ((flags_frag & 0x1fff) != 0 || (flags_frag & 0x2000) != 0) {
    return out;  // fragmented datagram: a resolver tap reassembles upstream
  }
  cursor.skip(1, "ip ttl");
  const auto protocol = cursor.u8("ip protocol");
  cursor.skip(2, "ip checksum");
  cursor.skip(4, "ip source address");
  const auto dst = cursor.take(4, "ip destination address");
  if (ihl > 20) {
    cursor.skip(ihl - 20, "ip options");
  }
  if (protocol != 17) {  // UDP
    return out;
  }
  const auto src_port = cursor.u16be("udp source port");
  cursor.skip(2, "udp destination port");
  const auto udp_length = cursor.u16be("udp length");
  cursor.skip(2, "udp checksum");
  if (src_port != 53) {
    return out;  // responses flow resolver -> client from port 53
  }
  util::require_data(udp_length >= 8, "pcap: udp length below header size");
  const std::size_t payload = udp_length - 8;
  util::require_data(payload <= cursor.remaining(), "pcap: udp payload truncated");
  out.dns = cursor.take(payload, "udp payload");
  out.client = IpV4::from_octets(dst[0], dst[1], dst[2], dst[3]);
  return out;
}

}  // namespace

PcapReader::PcapReader(std::span<const unsigned char> capture) {
  data_ = capture;
  ByteCursor cursor(data_);
  const auto magic = cursor.u32le("pcap magic");
  switch (magic) {
    case kMagicMicros:
    case kMagicNanos:
      swapped_ = false;
      break;
    case kMagicMicrosSwapped:
    case kMagicNanosSwapped:
      swapped_ = true;
      break;
    default:
      throw util::ParseError("pcap: unrecognized magic number");
  }
  cursor.skip(4, "pcap version");        // major/minor
  cursor.skip(8, "pcap thiszone/sigfigs");
  cursor.skip(4, "pcap snaplen");
  linktype_ = read_u32(cursor, swapped_, "pcap linktype");
  util::require_data(linktype_ == kLinktypeEthernet || linktype_ == kLinktypeRaw,
                     "pcap: unsupported link type " + std::to_string(linktype_));
  pos_ = cursor.pos();
}

bool PcapReader::next(QueryRecord& record) {
  while (true) {
    ByteCursor cursor(data_.subspan(pos_));
    if (cursor.done()) {
      return false;
    }
    const auto ts_sec = read_u32(cursor, swapped_, "packet ts_sec");
    cursor.skip(4, "packet ts_frac");
    const auto incl_len = read_u32(cursor, swapped_, "packet incl_len");
    const auto orig_len = read_u32(cursor, swapped_, "packet orig_len");
    util::require_data(incl_len <= kMaxPcapPacketBytes,
                       "pcap: oversized packet record (" + std::to_string(incl_len) +
                           " bytes)");
    const auto packet = cursor.take(incl_len, "packet data");
    pos_ += cursor.pos();
    if (incl_len < orig_len) {
      ++skipped_;  // snaplen-truncated packet: cannot parse reliably
      continue;
    }
    const auto datagram = strip_headers(packet, linktype_);
    if (datagram.dns.empty()) {
      ++skipped_;
      continue;
    }
    const auto summary = summarize(datagram.dns);
    opt_records_ += summary.opt_records;
    opt_skipped_ += summary.opt_skipped;
    if (!summary.is_response || summary.rcode != 0 || summary.qname.empty() ||
        summary.a_records.empty()) {
      ++skipped_;
      continue;
    }
    record.day = static_cast<Day>(static_cast<std::int64_t>(ts_sec) / kSecondsPerDay);
    record.machine = datagram.client.to_string();
    record.qname = summary.qname;
    record.resolved_ips = summary.a_records;
    return true;
  }
}

void write_pcap_trace(const DayTrace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  util::require_data(out.is_open(), "write_pcap_trace: cannot create '" + path + "'");
  std::vector<unsigned char> buf;
  const auto push32le = [&buf](std::uint32_t value) {
    buf.push_back(static_cast<unsigned char>(value & 0xff));
    buf.push_back(static_cast<unsigned char>((value >> 8) & 0xff));
    buf.push_back(static_cast<unsigned char>((value >> 16) & 0xff));
    buf.push_back(static_cast<unsigned char>(value >> 24));
  };

  // Global header: microsecond magic, little-endian byte order.
  push32le(kMagicMicros);
  push32le(0x00040002);  // major=2, minor=4 as two LE u16s
  push32le(0);           // thiszone
  push32le(0);           // sigfigs
  push32le(kMaxPcapPacketBytes);
  push32le(kLinktypeEthernet);

  std::uint16_t ip_id = 0;
  for (const auto& record : trace.records) {
    const auto client = machine_address(record.machine);
    const auto dns = encode_response(record.qname, record.resolved_ips);

    std::vector<unsigned char> packet;
    const auto p8 = [&packet](std::uint8_t v) { packet.push_back(v); };
    const auto p16 = [&packet](std::uint16_t v) {
      packet.push_back(static_cast<unsigned char>(v >> 8));
      packet.push_back(static_cast<unsigned char>(v & 0xff));
    };
    const auto p32 = [&packet](std::uint32_t v) {
      packet.push_back(static_cast<unsigned char>(v >> 24));
      packet.push_back(static_cast<unsigned char>((v >> 16) & 0xff));
      packet.push_back(static_cast<unsigned char>((v >> 8) & 0xff));
      packet.push_back(static_cast<unsigned char>(v & 0xff));
    };

    // Ethernet: synthetic addresses, IPv4 ethertype.
    for (int i = 0; i < 12; ++i) {
      p8(static_cast<std::uint8_t>(i < 6 ? 0x02 : 0x04));
    }
    p16(kEthertypeIpv4);

    // IPv4: resolver 10.0.0.53 -> client, UDP, no fragmentation.
    const std::uint16_t udp_len = static_cast<std::uint16_t>(8 + dns.size());
    p8(0x45);  // version 4, ihl 5
    p8(0);     // tos
    p16(static_cast<std::uint16_t>(20 + udp_len));
    p16(ip_id++);
    p16(0);    // flags/fragment
    p8(64);    // ttl
    p8(17);    // protocol UDP
    p16(0);    // checksum: readers here never verify it
    p32(IpV4::from_octets(10, 0, 0, 53).value());
    p32(client.value());

    // UDP: port 53 -> ephemeral.
    p16(53);
    p16(40000);
    p16(udp_len);
    p16(0);  // checksum optional over IPv4
    packet.insert(packet.end(), dns.begin(), dns.end());

    util::require(packet.size() <= kMaxPcapPacketBytes, "write_pcap_trace: packet too large");
    push32le(static_cast<std::uint32_t>(static_cast<std::int64_t>(record.day) *
                                        kSecondsPerDay));
    push32le(0);  // microseconds
    push32le(static_cast<std::uint32_t>(packet.size()));
    push32le(static_cast<std::uint32_t>(packet.size()));
    buf.insert(buf.end(), packet.begin(), packet.end());
  }

  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
  util::require_data(static_cast<bool>(out), "write_pcap_trace: write failed");
}

}  // namespace seg::dns::wire
