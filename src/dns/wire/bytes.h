// Bounds-checked cursor over a borrowed byte buffer — the zero-copy
// substrate of the wire-format parsers.
//
// Every wire reader (dnstap frame streams, pcap, DNS messages) walks an
// mmap'd or in-memory capture through a ByteCursor: reads are explicit
// big-/little-endian and every advance is bounds-checked, throwing
// util::ParseError on truncation. Nothing is copied — take() hands back
// subspans of the underlying mapping, so a multi-gigabyte capture is
// parsed without ever materializing it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

#include "util/require.h"

namespace seg::dns::wire {

class ByteCursor {
 public:
  ByteCursor() = default;
  explicit ByteCursor(std::span<const unsigned char> data) : data_(data) {}

  std::size_t pos() const { return pos_; }
  std::size_t size() const { return data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

  /// Throws util::ParseError mentioning `what` unless `n` bytes remain.
  void require_bytes(std::size_t n, std::string_view what) const {
    util::require_data(n <= remaining(),
                       std::string(what) + ": truncated (need " + std::to_string(n) +
                           " bytes, have " + std::to_string(remaining()) + ")");
  }

  std::uint8_t u8(std::string_view what) {
    require_bytes(1, what);
    return data_[pos_++];
  }

  std::uint16_t u16be(std::string_view what) {
    require_bytes(2, what);
    const std::uint16_t value =
        static_cast<std::uint16_t>((std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return value;
  }

  std::uint32_t u32be(std::string_view what) {
    require_bytes(4, what);
    const std::uint32_t value = (std::uint32_t{data_[pos_]} << 24) |
                                (std::uint32_t{data_[pos_ + 1]} << 16) |
                                (std::uint32_t{data_[pos_ + 2]} << 8) |
                                std::uint32_t{data_[pos_ + 3]};
    pos_ += 4;
    return value;
  }

  std::uint16_t u16le(std::string_view what) {
    require_bytes(2, what);
    const std::uint16_t value =
        static_cast<std::uint16_t>(data_[pos_] | (std::uint16_t{data_[pos_ + 1]} << 8));
    pos_ += 2;
    return value;
  }

  std::uint32_t u32le(std::string_view what) {
    require_bytes(4, what);
    const std::uint32_t value = std::uint32_t{data_[pos_]} |
                                (std::uint32_t{data_[pos_ + 1]} << 8) |
                                (std::uint32_t{data_[pos_ + 2]} << 16) |
                                (std::uint32_t{data_[pos_ + 3]} << 24);
    pos_ += 4;
    return value;
  }

  /// Borrows the next `n` bytes (no copy — a subspan of the underlying
  /// buffer, valid as long as the buffer) and advances past them.
  std::span<const unsigned char> take(std::size_t n, std::string_view what) {
    require_bytes(n, what);
    pos_ += n;
    return data_.subspan(pos_ - n, n);
  }

  void skip(std::size_t n, std::string_view what) {
    require_bytes(n, what);
    pos_ += n;
  }

  /// Reads the byte at absolute `offset` without moving the cursor — the
  /// random-access side of compression-pointer back-references. All
  /// bounds-checked random access goes through u8_at/view_at so R-WIRE1
  /// (docs/static-analysis.md) can confine raw subscripts to this header.
  std::uint8_t u8_at(std::size_t offset, std::string_view what) const {
    util::require_data(offset < data_.size(),
                       std::string(what) + ": offset past buffer end");
    return data_[offset];
  }

  /// Borrows `n` bytes at absolute `offset` without moving the cursor (a
  /// subspan of the underlying buffer, valid as long as the buffer).
  std::span<const unsigned char> view_at(std::size_t offset, std::size_t n,
                                         std::string_view what) const {
    util::require_data(offset <= data_.size() && n <= data_.size() - offset,
                       std::string(what) + ": truncated (need " + std::to_string(n) +
                           " bytes at offset " + std::to_string(offset) + ")");
    return data_.subspan(offset, n);
  }

  /// The whole underlying buffer (for compression-pointer back-references).
  std::span<const unsigned char> buffer() const { return data_; }

 private:
  std::span<const unsigned char> data_;
  std::size_t pos_ = 0;
};

}  // namespace seg::dns::wire
