#include "dns/ip.h"

#include <charconv>

#include "util/require.h"
#include "util/strings.h"

namespace seg::dns {

IpV4 IpV4::parse(std::string_view text) {
  const auto parts = util::split(text, '.');
  util::require_data(parts.size() == 4, "IpV4::parse: expected 4 octets in '" + std::string(text) + "'");
  std::uint32_t value = 0;
  for (const auto part : parts) {
    unsigned int octet = 0;
    const auto [ptr, ec] = std::from_chars(part.data(), part.data() + part.size(), octet);
    util::require_data(ec == std::errc() && ptr == part.data() + part.size() && octet <= 255 &&
                           !part.empty() && part.size() <= 3,
                       "IpV4::parse: malformed octet in '" + std::string(text) + "'");
    value = (value << 8) | octet;
  }
  return IpV4(value);
}

std::string IpV4::to_string() const {
  std::string out;
  out.reserve(15);
  out += std::to_string((value_ >> 24) & 0xff);
  out += '.';
  out += std::to_string((value_ >> 16) & 0xff);
  out += '.';
  out += std::to_string((value_ >> 8) & 0xff);
  out += '.';
  out += std::to_string(value_ & 0xff);
  return out;
}

}  // namespace seg::dns
