// IPv4 address value type with /24 prefix support.
//
// The paper's IP-abuse features (F3) operate on resolved IPv4 addresses and
// their /24 prefixes; this type keeps both as plain integers so the passive
// DNS database can index them cheaply.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

namespace seg::dns {

/// An IPv4 address stored as a host-order 32-bit integer.
class IpV4 {
 public:
  constexpr IpV4() = default;
  constexpr explicit IpV4(std::uint32_t value) : value_(value) {}

  /// Builds from dotted octets.
  static constexpr IpV4 from_octets(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                                    std::uint8_t d) {
    return IpV4((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) |
                std::uint32_t{d});
  }

  /// Parses dotted-quad notation; throws util::ParseError on malformed input.
  static IpV4 parse(std::string_view text);

  constexpr std::uint32_t value() const { return value_; }

  /// The /24 prefix (upper 24 bits; lower octet zeroed).
  constexpr std::uint32_t prefix24() const { return value_ & 0xffffff00u; }

  std::string to_string() const;

  friend constexpr auto operator<=>(IpV4 a, IpV4 b) = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace seg::dns

template <>
struct std::hash<seg::dns::IpV4> {
  std::size_t operator()(seg::dns::IpV4 ip) const noexcept {
    // mix to spread sequential addresses across buckets
    std::uint64_t x = ip.value();
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};
