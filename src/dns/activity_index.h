// Domain activity history.
//
// The F2 features measure *domain activity* rather than registration age
// (Section II-A3): over the n = 14 days preceding the graph day, how many
// days was the domain actively queried, and how many consecutive days ending
// at the graph day. Both are measured for the FQDN and for its effective
// 2LD. This index stores, per name, the sorted set of days on which it was
// queried anywhere in the monitored network.
#pragma once

#include <functional>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dns/types.h"

namespace seg::dns {

class DomainActivityIndex {
 public:
  /// Marks `name` (an FQDN or an e2LD; the caller chooses the granularity)
  /// as actively queried on `day`. Idempotent per (name, day).
  void mark_active(std::string_view name, Day day);

  /// Number of distinct active days in [from, to] inclusive.
  int active_days(std::string_view name, Day from, Day to) const;

  /// Number of consecutive active days ending exactly at `day` (0 when the
  /// name was not active on `day` itself).
  int consecutive_days_ending(std::string_view name, Day day) const;

  /// First day the name was ever seen; nullopt when never seen. (Days can
  /// legitimately be negative — the simulated warmup period predates day
  /// zero — so no sentinel value exists.)
  std::optional<Day> first_seen(std::string_view name) const;

  std::size_t tracked_names() const { return days_.size(); }

  /// Enumerates every (name, sorted days) pair in unspecified order (used
  /// by the sharded store's absorb and merged save paths).
  void visit(const std::function<void(std::string_view name, std::span<const Day> days)>& fn)
      const;

  /// Text serialization: one `name day day ...` line per tracked name,
  /// prefixed with the versioned `segf1 activity <version>` header
  /// (util/serialize.h). load() also accepts headerless legacy streams.
  void save(std::ostream& out) const;
  static DomainActivityIndex load(std::istream& in);

  static constexpr int kFormatVersion = 2;  ///< 2 = segf1 header; 1 = legacy

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::unordered_map<std::string, std::vector<Day>, StringHash, std::equal_to<>> days_;
};

}  // namespace seg::dns
