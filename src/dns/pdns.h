// Passive DNS database.
//
// The paper's IP-abuse features (F3) consult "a large passive DNS database"
// covering the W = 5 months preceding the observation day: for the IPs a
// domain resolved to, how many were previously pointed to by known
// malware-control domains, and how many were used by unknown domains
// (Section II-A3). This store indexes per-IP and per-/24 observation days,
// bucketed by the label of the pointing domain at observation time.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <span>
#include <unordered_map>
#include <vector>

#include "dns/ip.h"
#include "dns/types.h"

namespace seg::dns {

/// Label of the domain that pointed at an IP, as known when the passive DNS
/// observation was stored.
enum class PdnsAssociation { kMalware, kUnknown, kBenign };

/// One of the four (ip | /24 prefix) x (malware | unknown) day indexes.
enum class PdnsIndexKind { kIpMalware, kIpUnknown, kPrefixMalware, kPrefixUnknown };

class PassiveDnsDb {
 public:
  /// Records that a domain with association `kind` resolved to `ip` on `day`.
  void add_observation(Day day, IpV4 ip, PdnsAssociation kind);

  /// Convenience: records one observation per resolved IP.
  void add_resolution(Day day, std::span<const IpV4> ips, PdnsAssociation kind);

  /// True if `ip` was pointed to by a known-malware domain on some day in
  /// [from, to] (inclusive).
  bool ip_malware_associated(IpV4 ip, Day from, Day to) const;

  /// True if any IP inside `ip`'s /24 was pointed to by a known-malware
  /// domain during [from, to].
  bool prefix_malware_associated(IpV4 ip, Day from, Day to) const;

  /// True if `ip` was used by a (then-)unknown domain during [from, to].
  bool ip_unknown_associated(IpV4 ip, Day from, Day to) const;

  /// True if any IP inside `ip`'s /24 was used by an unknown domain during
  /// [from, to].
  bool prefix_unknown_associated(IpV4 ip, Day from, Day to) const;

  /// Total stored observations (for reporting).
  std::size_t observation_count() const { return observations_; }

  /// Number of distinct IPs with at least one observation.
  std::size_t distinct_ip_count() const;

  /// Enumerates one index in unspecified order (used by the sharded store's
  /// absorb and merged save paths).
  void visit(PdnsIndexKind kind,
             const std::function<void(std::uint32_t key, std::span<const Day> days)>& fn) const;

  /// Low-level merge: folds sorted-or-not `days` for `key` into one index.
  /// Idempotent per (key, day); does not touch observation_count().
  void merge_index_days(PdnsIndexKind kind, std::uint32_t key, std::span<const Day> days);

  /// Overrides the stored observation counter. Merge/absorb paths only —
  /// normal ingest maintains the counter through add_observation().
  void set_observation_count(std::size_t count) { observations_ = count; }

  /// Text serialization of the malware/unknown indexes, prefixed with the
  /// versioned `segf1 pdns <version>` header (util/serialize.h). load()
  /// also accepts headerless legacy streams.
  void save(std::ostream& out) const;
  static PassiveDnsDb load(std::istream& in);

  static constexpr int kFormatVersion = 2;  ///< 2 = segf1 header; 1 = legacy

 private:
  // Sorted day lists per key; days are appended mostly in order (the
  // simulator feeds history chronologically), so we keep a sorted invariant
  // lazily with an insertion that is O(1) for in-order appends.
  using DayIndex = std::unordered_map<std::uint32_t, std::vector<Day>>;

  static void insert_day(std::vector<Day>& days, Day day);
  static bool any_in_range(const DayIndex& index, std::uint32_t key, Day from, Day to);

  DayIndex ip_malware_;
  DayIndex ip_unknown_;
  DayIndex prefix_malware_;
  DayIndex prefix_unknown_;
  std::size_t observations_ = 0;
};

}  // namespace seg::dns
