// Public Suffix List matching and effective second-level domain (e2LD)
// extraction.
//
// The paper computes "effective second-level domains" using the Mozilla
// Public Suffix List augmented with a custom list of dynamic-DNS zones
// (Section II-A, footnote 2). This is a full implementation of the PSL
// matching algorithm (https://publicsuffix.org/list/):
//
//   - normal rules:     "co.uk" means *.co.uk registers at the third level
//   - wildcard rules:   "*.ck"  means every label under .ck is a suffix
//   - exception rules:  "!www.ck" carves an exception out of a wildcard
//   - prevailing rule when nothing matches is "*" (the bare TLD)
//
// The registrable domain (what the paper calls e2LD) is the public suffix
// plus one more label.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace seg::dns {

class PublicSuffixList {
 public:
  /// An empty list; only the implicit "*" rule applies.
  PublicSuffixList() = default;

  /// Returns a list preloaded with a snapshot of common ICANN suffixes and
  /// the custom dynamic-DNS zones the paper adds (dyndns.org etc.).
  static PublicSuffixList with_default_rules();

  /// Adds one rule in PSL syntax ("co.uk", "*.ck", "!www.ck").
  /// Throws util::ParseError on malformed rules.
  void add_rule(std::string_view rule);

  /// Adds every non-comment line of `text` as a rule ("//"-prefixed lines
  /// and blanks are skipped, like the real PSL file format).
  void add_rules_from_text(std::string_view text);

  std::size_t rule_count() const;

  /// Longest matching public suffix of `domain` (always non-empty for a
  /// valid name: the implicit "*" rule matches the TLD). `domain` must be
  /// normalized lowercase without a trailing dot.
  std::string_view public_suffix(std::string_view domain) const;

  /// The registrable domain: public suffix plus one label. Returns
  /// std::nullopt when `domain` itself is (or is shorter than) a public
  /// suffix, e.g. "co.uk" has no e2LD.
  std::optional<std::string_view> registrable_domain(std::string_view domain) const;

  /// Convenience: e2LD of `domain`, or `domain` itself when it has no
  /// registrable part (matching how the paper treats bare suffix queries).
  std::string_view e2ld_or_self(std::string_view domain) const;

 private:
  enum class RuleKind { kNormal, kWildcard, kException };

  // Transparent hashing lets public_suffix() probe with string_views
  // without allocating per candidate suffix.
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  using RuleSet = std::unordered_set<std::string, StringHash, std::equal_to<>>;

  // Rules are stored by their literal label string (wildcard rules store the
  // suffix *without* the leading "*."), in separate sets per kind.
  RuleSet normal_;
  RuleSet wildcard_;   // "*.ck" stored as "ck"
  RuleSet exception_;  // "!www.ck" stored as "www.ck"
};

/// The embedded snapshot used by with_default_rules(): common ICANN
/// suffixes plus dynamic-DNS / free-hosting zones. Exposed for tests.
std::string_view default_public_suffix_rules();

}  // namespace seg::dns
