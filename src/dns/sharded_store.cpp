#include "dns/sharded_store.h"

#include <algorithm>
#include <functional>

#include "util/obs/metrics.h"
#include "util/obs/trace.h"
#include "util/parallel.h"
#include "util/require.h"

namespace seg::dns {

// ---------------------------------------------------------------------------
// ShardedActivityIndex

ShardedActivityIndex::ShardedActivityIndex(std::size_t num_shards)
    : shards_(num_shards == 0 ? 1 : num_shards) {}

std::size_t ShardedActivityIndex::shard_of(std::string_view name) const {
  return std::hash<std::string_view>{}(name) % shards_.size();
}

void ShardedActivityIndex::mark_active(std::string_view name, Day day) {
  shards_[shard_of(name)].mark_active(name, day);
}

int ShardedActivityIndex::active_days(std::string_view name, Day from, Day to) const {
  return shards_[shard_of(name)].active_days(name, from, to);
}

int ShardedActivityIndex::consecutive_days_ending(std::string_view name, Day day) const {
  return shards_[shard_of(name)].consecutive_days_ending(name, day);
}

std::optional<Day> ShardedActivityIndex::first_seen(std::string_view name) const {
  return shards_[shard_of(name)].first_seen(name);
}

std::size_t ShardedActivityIndex::tracked_names() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.tracked_names();
  }
  return total;
}

std::vector<ShardedActivityIndex::Answer> ShardedActivityIndex::query_batch(
    std::span<const Query> queries) const {
  SEG_SPAN("dns/activity_query_batch");
  obs::Registry::instance().counter("seg_activity_queries_total").add(queries.size());
  std::vector<Answer> answers(queries.size());
  util::parallel_for(queries.size(), [&](std::size_t i) {
    const auto& q = queries[i];
    const auto& shard = shards_[shard_of(q.name)];
    answers[i] = Answer{shard.active_days(q.name, q.from, q.to),
                        shard.consecutive_days_ending(q.name, q.ending)};
  });
  return answers;
}

void ShardedActivityIndex::absorb(const DomainActivityIndex& serial) {
  serial.visit([&](std::string_view name, std::span<const Day> days) {
    auto& shard = shards_[shard_of(name)];
    for (const auto day : days) {
      shard.mark_active(name, day);
    }
  });
}

void ShardedActivityIndex::save(std::ostream& out) const {
  // Re-merge into one serial index and reuse its writer: that is what
  // makes the sharded bytes provably identical to the serial bytes.
  DomainActivityIndex merged;
  for (const auto& shard : shards_) {
    shard.visit([&](std::string_view name, std::span<const Day> days) {
      for (const auto day : days) {
        merged.mark_active(name, day);
      }
    });
  }
  merged.save(out);
}

ShardedActivityIndex ShardedActivityIndex::load(std::istream& in, std::size_t num_shards) {
  ShardedActivityIndex index(num_shards);
  index.absorb(DomainActivityIndex::load(in));
  return index;
}

// ---------------------------------------------------------------------------
// ShardedPassiveDnsDb

namespace {

constexpr PdnsIndexKind kAllPdnsKinds[] = {
    PdnsIndexKind::kIpMalware,
    PdnsIndexKind::kIpUnknown,
    PdnsIndexKind::kPrefixMalware,
    PdnsIndexKind::kPrefixUnknown,
};

}  // namespace

ShardedPassiveDnsDb::ShardedPassiveDnsDb(std::size_t num_shards)
    : shards_(num_shards == 0 ? 1 : num_shards) {}

std::size_t ShardedPassiveDnsDb::shard_of(IpV4 ip) const {
  // Route by /24 so an IP and its prefix share a shard: one routing
  // decision serves all four F3 flags of a query.
  return std::hash<std::uint32_t>{}(ip.prefix24()) % shards_.size();
}

void ShardedPassiveDnsDb::add_observation(Day day, IpV4 ip, PdnsAssociation kind) {
  shards_[shard_of(ip)].add_observation(day, ip, kind);
  ++observations_;
}

void ShardedPassiveDnsDb::add_resolution(Day day, std::span<const IpV4> ips,
                                         PdnsAssociation kind) {
  for (const auto ip : ips) {
    add_observation(day, ip, kind);
  }
}

bool ShardedPassiveDnsDb::ip_malware_associated(IpV4 ip, Day from, Day to) const {
  return shards_[shard_of(ip)].ip_malware_associated(ip, from, to);
}

bool ShardedPassiveDnsDb::prefix_malware_associated(IpV4 ip, Day from, Day to) const {
  return shards_[shard_of(ip)].prefix_malware_associated(ip, from, to);
}

bool ShardedPassiveDnsDb::ip_unknown_associated(IpV4 ip, Day from, Day to) const {
  return shards_[shard_of(ip)].ip_unknown_associated(ip, from, to);
}

bool ShardedPassiveDnsDb::prefix_unknown_associated(IpV4 ip, Day from, Day to) const {
  return shards_[shard_of(ip)].prefix_unknown_associated(ip, from, to);
}

std::size_t ShardedPassiveDnsDb::observation_count() const { return observations_; }

std::size_t ShardedPassiveDnsDb::distinct_ip_count() const {
  // Every observation for an IP routes to one fixed shard, so the shard
  // counts partition the distinct-IP set.
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.distinct_ip_count();
  }
  return total;
}

std::vector<ShardedPassiveDnsDb::AbuseAnswer> ShardedPassiveDnsDb::query_batch(
    std::span<const AbuseQuery> queries) const {
  SEG_SPAN("dns/pdns_query_batch");
  obs::Registry::instance().counter("seg_pdns_queries_total").add(queries.size());
  std::vector<AbuseAnswer> answers(queries.size());
  util::parallel_for(queries.size(), [&](std::size_t i) {
    const auto& q = queries[i];
    const auto& shard = shards_[shard_of(q.ip)];
    answers[i] = AbuseAnswer{
        static_cast<std::uint8_t>(shard.ip_malware_associated(q.ip, q.from, q.to)),
        static_cast<std::uint8_t>(shard.ip_unknown_associated(q.ip, q.from, q.to)),
        static_cast<std::uint8_t>(shard.prefix_malware_associated(q.ip, q.from, q.to)),
        static_cast<std::uint8_t>(shard.prefix_unknown_associated(q.ip, q.from, q.to))};
  });
  return answers;
}

void ShardedPassiveDnsDb::absorb(const PassiveDnsDb& serial) {
  for (const auto kind : kAllPdnsKinds) {
    // Both per-IP and per-prefix keys route through the /24 hash; for
    // prefix indexes the key already is the /24, for IP indexes we must
    // rebuild an IpV4 so shard_of sees the IP's prefix.
    const bool key_is_ip =
        kind == PdnsIndexKind::kIpMalware || kind == PdnsIndexKind::kIpUnknown;
    serial.visit(kind, [&](std::uint32_t key, std::span<const Day> days) {
      const std::size_t sh = key_is_ip
                                 ? shard_of(IpV4(key))
                                 : std::hash<std::uint32_t>{}(key) % shards_.size();
      shards_[sh].merge_index_days(kind, key, days);
    });
  }
  observations_ = std::max(observations_, serial.observation_count());
}

void ShardedPassiveDnsDb::save(std::ostream& out) const {
  // Re-merge into one serial database and reuse its writer so the sharded
  // bytes are identical to the serial bytes for the same content.
  PassiveDnsDb merged;
  for (const auto& shard : shards_) {
    for (const auto kind : kAllPdnsKinds) {
      shard.visit(kind, [&](std::uint32_t key, std::span<const Day> days) {
        merged.merge_index_days(kind, key, days);
      });
    }
  }
  merged.set_observation_count(observations_);
  merged.save(out);
}

ShardedPassiveDnsDb ShardedPassiveDnsDb::load(std::istream& in, std::size_t num_shards) {
  ShardedPassiveDnsDb db(num_shards);
  db.absorb(PassiveDnsDb::load(in));
  return db;
}

}  // namespace seg::dns
