#include "dns/domain_name.h"

#include <cctype>

#include "util/require.h"
#include "util/strings.h"

namespace seg::dns {

namespace {

bool is_label_char(char c) {
  const auto uc = static_cast<unsigned char>(c);
  return std::isalnum(uc) != 0 || c == '-' || c == '_';
}

// Validates a normalized (lowercase, no trailing dot) candidate name.
bool validate_normalized(std::string_view name) {
  if (name.empty() || name.size() > 253) {
    return false;
  }
  std::size_t label_start = 0;
  std::size_t label_count = 0;
  for (std::size_t i = 0; i <= name.size(); ++i) {
    if (i == name.size() || name[i] == '.') {
      const std::size_t len = i - label_start;
      if (len == 0 || len > 63) {
        return false;
      }
      const std::string_view label = name.substr(label_start, len);
      if (label.front() == '-' || label.back() == '-') {
        return false;
      }
      ++label_count;
      label_start = i + 1;
      continue;
    }
    if (!is_label_char(name[i])) {
      return false;
    }
  }
  return label_count >= 1;
}

std::string normalize(std::string_view text) {
  if (!text.empty() && text.back() == '.') {
    text.remove_suffix(1);
  }
  return util::to_lower(text);
}

}  // namespace

DomainName DomainName::parse(std::string_view text) {
  std::string normalized = normalize(text);
  util::require_data(validate_normalized(normalized),
                     "DomainName::parse: invalid domain name: '" + std::string(text) + "'");
  return DomainName(std::move(normalized));
}

bool DomainName::is_valid(std::string_view text) {
  return validate_normalized(normalize(text));
}

bool DomainName::is_normalized(std::string_view text) {
  // normalize() only lowercases ASCII letters and strips one trailing dot,
  // so a name is already normalized iff neither applies.
  if (text.empty() || text.back() == '.') {
    return false;
  }
  for (const char c : text) {
    if (c >= 'A' && c <= 'Z') {
      return false;
    }
  }
  return true;
}

std::vector<std::string_view> DomainName::labels() const {
  return util::split(name_, '.');
}

std::size_t DomainName::label_count() const {
  std::size_t count = 1;
  for (char c : name_) {
    count += (c == '.') ? 1 : 0;
  }
  return count;
}

std::string_view DomainName::tld() const {
  const auto pos = name_.rfind('.');
  return pos == std::string::npos ? std::string_view(name_)
                                  : std::string_view(name_).substr(pos + 1);
}

std::string_view DomainName::parent() const {
  const auto pos = name_.find('.');
  return pos == std::string::npos ? std::string_view()
                                  : std::string_view(name_).substr(pos + 1);
}

bool DomainName::is_subdomain_of(std::string_view ancestor) const {
  const std::string_view self(name_);
  if (self == ancestor) {
    return true;
  }
  return self.size() > ancestor.size() && util::ends_with(self, ancestor) &&
         self[self.size() - ancestor.size() - 1] == '.';
}

}  // namespace seg::dns
