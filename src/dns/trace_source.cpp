#include "dns/trace_source.h"

#include <cstring>
#include <fstream>

#include "dns/wire/bytes.h"
#include "dns/wire/dnstap.h"
#include "dns/wire/pcap.h"
#include "util/csv.h"
#include "util/mmap_file.h"
#include "util/require.h"
#include "util/strings.h"

namespace seg::dns {

namespace {

constexpr std::string_view kBinlogMagic = "SEGTRC1";

// Incremental SEGTRC1 reader over a mapped file. A multi-day binlog is a
// plain concatenation of single-day SEGTRC1 segments (cat day1.bin
// day2.bin ...); each segment header re-arms the day and record count.
class BinlogCursor {
 public:
  explicit BinlogCursor(std::span<const unsigned char> data) : cursor_(data) {
    if (!cursor_.done()) {
      read_segment_header();
    }
  }

  bool next(QueryRecord& record) {
    while (remaining_ == 0) {
      if (cursor_.done()) {
        return false;
      }
      read_segment_header();
    }
    --remaining_;
    record.day = day_;
    read_string(record.machine, "binlog machine");
    read_string(record.qname, "binlog qname");
    const auto ip_count = cursor_.u8("binlog ip count");
    record.resolved_ips.clear();
    record.resolved_ips.reserve(ip_count);
    for (std::uint8_t k = 0; k < ip_count; ++k) {
      record.resolved_ips.push_back(IpV4(cursor_.u32le("binlog ip")));
    }
    return true;
  }

 private:
  void read_segment_header() {
    const auto magic = cursor_.take(kBinlogMagic.size(), "binlog magic");
    util::require_data(
        std::memcmp(magic.data(), kBinlogMagic.data(), kBinlogMagic.size()) == 0,
        "binlog: bad magic (not a SEGTRC1 segment)");
    day_ = static_cast<Day>(static_cast<std::int32_t>(cursor_.u32le("binlog day")));
    const std::uint64_t low = cursor_.u32le("binlog count");
    const std::uint64_t high = cursor_.u32le("binlog count");
    remaining_ = low | (high << 32);
  }

  void read_string(std::string& out, std::string_view what) {
    const auto length = cursor_.u16le(what);
    const auto bytes = cursor_.take(length, what);
    out.assign(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  }

  wire::ByteCursor cursor_;
  Day day_ = 0;
  std::uint64_t remaining_ = 0;
};

// Streaming sim-TSV reader. Unlike read_trace() it accepts multiple days
// in one file — a streamed deployment crosses day boundaries — but the
// pipeline still requires them to be non-decreasing.
class SimCursor {
 public:
  explicit SimCursor(const std::string& path) : reader_(path) {}

  bool next(QueryRecord& record) {
    std::vector<std::string_view> fields;
    if (!reader_.next(fields)) {
      return false;
    }
    util::require_data(fields.size() == 4,
                       "sim trace: expected 4 fields at line " +
                           std::to_string(reader_.line_number()));
    record.day = static_cast<Day>(util::parse_u64(fields[0]));
    record.machine = std::string(fields[1]);
    record.qname = std::string(fields[2]);
    record.resolved_ips.clear();
    for (const auto ip_text : util::split_skip_empty(fields[3], ',')) {
      record.resolved_ips.push_back(IpV4::parse(ip_text));
    }
    return true;
  }

 private:
  util::DsvReader reader_;
};

}  // namespace

std::string_view format_name(TraceFormat format) {
  switch (format) {
    case TraceFormat::kSim:
      return "sim";
    case TraceFormat::kBinlog:
      return "binlog";
    case TraceFormat::kDnstap:
      return "dnstap";
    case TraceFormat::kPcap:
      return "pcap";
  }
  return "sim";
}

TraceFormat parse_format(std::string_view name) {
  if (name == "sim") {
    return TraceFormat::kSim;
  }
  if (name == "binlog") {
    return TraceFormat::kBinlog;
  }
  if (name == "dnstap") {
    return TraceFormat::kDnstap;
  }
  if (name == "pcap") {
    return TraceFormat::kPcap;
  }
  throw util::ParseError("unknown trace format '" + std::string(name) +
                         "' (expected sim|binlog|dnstap|pcap)");
}

TraceFormat detect_format(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  util::require_data(in.is_open(), "detect_format: cannot open '" + path + "'");
  unsigned char head[8] = {};
  in.read(reinterpret_cast<char*>(head), sizeof(head));
  const auto got = static_cast<std::size_t>(in.gcount());
  if (got >= kBinlogMagic.size() &&
      std::memcmp(head, kBinlogMagic.data(), kBinlogMagic.size()) == 0) {
    return TraceFormat::kBinlog;
  }
  if (got >= 4) {
    const std::uint32_t magic_le = std::uint32_t{head[0]} | (std::uint32_t{head[1]} << 8) |
                                   (std::uint32_t{head[2]} << 16) |
                                   (std::uint32_t{head[3]} << 24);
    if (magic_le == 0xa1b2c3d4 || magic_le == 0xa1b23c4d || magic_le == 0xd4c3b2a1 ||
        magic_le == 0x4d3cb2a1) {
      return TraceFormat::kPcap;
    }
    if (magic_le == 0) {
      return TraceFormat::kDnstap;  // frame-streams control escape
    }
  }
  return TraceFormat::kSim;
}

struct FileTraceSource::Impl {
  util::MmapFile map;
  std::unique_ptr<BinlogCursor> binlog;
  std::unique_ptr<wire::DnstapReader> dnstap;
  std::unique_ptr<wire::PcapReader> pcap;
  std::unique_ptr<SimCursor> sim;
};

FileTraceSource::FileTraceSource(const std::string& path)
    : FileTraceSource(path, detect_format(path)) {}

FileTraceSource::FileTraceSource(const std::string& path, TraceFormat format)
    : format_(format), impl_(std::make_unique<Impl>()) {
  if (format == TraceFormat::kSim) {
    impl_->sim = std::make_unique<SimCursor>(path);
    return;
  }
  impl_->map = util::MmapFile(path);
  const std::span<const unsigned char> data(impl_->map.data(), impl_->map.size());
  switch (format) {
    case TraceFormat::kBinlog:
      impl_->binlog = std::make_unique<BinlogCursor>(data);
      break;
    case TraceFormat::kDnstap:
      impl_->dnstap = std::make_unique<wire::DnstapReader>(data);
      break;
    case TraceFormat::kPcap:
      impl_->pcap = std::make_unique<wire::PcapReader>(data);
      break;
    case TraceFormat::kSim:
      break;  // handled above
  }
}

FileTraceSource::~FileTraceSource() = default;

bool FileTraceSource::next(QueryRecord& record) {
  switch (format_) {
    case TraceFormat::kSim:
      return impl_->sim->next(record);
    case TraceFormat::kBinlog:
      return impl_->binlog->next(record);
    case TraceFormat::kDnstap:
      return impl_->dnstap->next(record);
    case TraceFormat::kPcap:
      return impl_->pcap->next(record);
  }
  return false;
}

std::uint64_t FileTraceSource::skipped() const {
  if (impl_->dnstap) {
    return impl_->dnstap->skipped();
  }
  if (impl_->pcap) {
    return impl_->pcap->skipped();
  }
  return 0;
}

std::uint64_t collect_days(TraceSource& source,
                           const std::function<void(DayTrace&&)>& on_day) {
  std::uint64_t total = 0;
  DayTrace current;
  bool open = false;
  QueryRecord record;
  while (source.next(record)) {
    ++total;
    if (open && record.day != current.day) {
      util::require_data(record.day > current.day,
                         "trace stream: day went backwards (" +
                             std::to_string(record.day) + " after " +
                             std::to_string(current.day) + ")");
      on_day(std::move(current));
      current = DayTrace{};
      open = false;
    }
    if (!open) {
      current.day = record.day;
      open = true;
    }
    current.records.push_back(record);
  }
  if (open) {
    on_day(std::move(current));
  }
  return total;
}

}  // namespace seg::dns
