#include "dns/pdns.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "util/require.h"
#include "util/serialize.h"

namespace seg::dns {

void PassiveDnsDb::add_observation(Day day, IpV4 ip, PdnsAssociation kind) {
  switch (kind) {
    case PdnsAssociation::kMalware:
      insert_day(ip_malware_[ip.value()], day);
      insert_day(prefix_malware_[ip.prefix24()], day);
      break;
    case PdnsAssociation::kUnknown:
      insert_day(ip_unknown_[ip.value()], day);
      insert_day(prefix_unknown_[ip.prefix24()], day);
      break;
    case PdnsAssociation::kBenign:
      // Benign associations are not consulted by F3; we still count them so
      // observation_count() reflects ingest volume.
      break;
  }
  ++observations_;
}

void PassiveDnsDb::add_resolution(Day day, std::span<const IpV4> ips, PdnsAssociation kind) {
  for (const auto ip : ips) {
    add_observation(day, ip, kind);
  }
}

bool PassiveDnsDb::ip_malware_associated(IpV4 ip, Day from, Day to) const {
  return any_in_range(ip_malware_, ip.value(), from, to);
}

bool PassiveDnsDb::prefix_malware_associated(IpV4 ip, Day from, Day to) const {
  return any_in_range(prefix_malware_, ip.prefix24(), from, to);
}

bool PassiveDnsDb::ip_unknown_associated(IpV4 ip, Day from, Day to) const {
  return any_in_range(ip_unknown_, ip.value(), from, to);
}

bool PassiveDnsDb::prefix_unknown_associated(IpV4 ip, Day from, Day to) const {
  return any_in_range(prefix_unknown_, ip.prefix24(), from, to);
}

std::size_t PassiveDnsDb::distinct_ip_count() const {
  // An IP may appear in both indexes; count the union. Iteration order is
  // irrelevant to a count.
  std::size_t count = ip_malware_.size();
  for (const auto& [ip, days] : ip_unknown_) {
    if (!ip_malware_.contains(ip)) {
      ++count;
    }
  }
  return count;
}

void PassiveDnsDb::insert_day(std::vector<Day>& days, Day day) {
  if (days.empty() || days.back() < day) {
    days.push_back(day);
    return;
  }
  if (days.back() == day) {
    return;  // duplicate same-day observation
  }
  const auto it = std::lower_bound(days.begin(), days.end(), day);
  if (it == days.end() || *it != day) {
    days.insert(it, day);
  }
}

bool PassiveDnsDb::any_in_range(const DayIndex& index, std::uint32_t key, Day from, Day to) {
  const auto it = index.find(key);
  if (it == index.end()) {
    return false;
  }
  const auto& days = it->second;
  const auto lo = std::lower_bound(days.begin(), days.end(), from);
  return lo != days.end() && *lo <= to;
}

void PassiveDnsDb::visit(
    PdnsIndexKind kind,
    const std::function<void(std::uint32_t, std::span<const Day>)>& fn) const {
  const DayIndex* index = nullptr;
  switch (kind) {
    case PdnsIndexKind::kIpMalware: index = &ip_malware_; break;
    case PdnsIndexKind::kIpUnknown: index = &ip_unknown_; break;
    case PdnsIndexKind::kPrefixMalware: index = &prefix_malware_; break;
    case PdnsIndexKind::kPrefixUnknown: index = &prefix_unknown_; break;
  }
  for (const auto& [key, days] : *index) {
    fn(key, days);
  }
}

void PassiveDnsDb::merge_index_days(PdnsIndexKind kind, std::uint32_t key,
                                    std::span<const Day> days) {
  DayIndex* index = nullptr;
  switch (kind) {
    case PdnsIndexKind::kIpMalware: index = &ip_malware_; break;
    case PdnsIndexKind::kIpUnknown: index = &ip_unknown_; break;
    case PdnsIndexKind::kPrefixMalware: index = &prefix_malware_; break;
    case PdnsIndexKind::kPrefixUnknown: index = &prefix_unknown_; break;
  }
  auto& stored = (*index)[key];
  for (const auto day : days) {
    insert_day(stored, day);
  }
}

namespace {

void save_index(std::ostream& out, const char* tag,
                const std::unordered_map<std::uint32_t, std::vector<Day>>& index) {
  // Emit keys in sorted order: iterating the hash table directly would leak
  // its bucket order into the serialized bytes, so two identical databases
  // could produce different files.
  std::vector<std::uint32_t> keys;
  keys.reserve(index.size());
  for (const auto& [key, days] : index) {
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  out << tag << ' ' << index.size() << '\n';
  for (const auto key : keys) {
    out << key;
    for (const auto day : index.at(key)) {
      out << ' ' << day;
    }
    out << '\n';
  }
}

void load_index(std::istream& in, const char* expected_tag,
                std::unordered_map<std::uint32_t, std::vector<Day>>& index) {
  std::string tag;
  std::size_t count = 0;
  in >> tag >> count;
  util::require_data(static_cast<bool>(in) && tag == expected_tag,
                     std::string("PassiveDnsDb::load: expected section '") + expected_tag +
                         "', got '" + tag + "'");
  std::string line;
  std::getline(in, line);
  for (std::size_t i = 0; i < count; ++i) {
    util::require_data(static_cast<bool>(std::getline(in, line)),
                       "PassiveDnsDb::load: truncated section");
    std::istringstream fields(line);
    std::uint32_t key = 0;
    fields >> key;
    auto& days = index[key];
    Day day = 0;
    while (fields >> day) {
      days.push_back(day);
    }
    std::sort(days.begin(), days.end());
    days.erase(std::unique(days.begin(), days.end()), days.end());
  }
}

}  // namespace

void PassiveDnsDb::save(std::ostream& out) const {
  util::write_format_header(out, "pdns", kFormatVersion);
  out << "pdns " << observations_ << '\n';
  save_index(out, "ip_malware", ip_malware_);
  save_index(out, "ip_unknown", ip_unknown_);
  save_index(out, "prefix_malware", prefix_malware_);
  save_index(out, "prefix_unknown", prefix_unknown_);
}

PassiveDnsDb PassiveDnsDb::load(std::istream& in) {
  // Headerless legacy streams parse identically: versions only differ in
  // the segf1 prefix so far.
  (void)util::read_format_header(in, "pdns", kFormatVersion);
  std::string tag;
  std::size_t observations = 0;
  in >> tag >> observations;
  util::require_data(static_cast<bool>(in) && tag == "pdns",
                     "PassiveDnsDb::load: malformed header");
  PassiveDnsDb db;
  db.observations_ = observations;
  load_index(in, "ip_malware", db.ip_malware_);
  load_index(in, "ip_unknown", db.ip_unknown_);
  load_index(in, "prefix_malware", db.prefix_malware_);
  load_index(in, "prefix_unknown", db.prefix_unknown_);
  return db;
}

}  // namespace seg::dns
