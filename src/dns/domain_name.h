// Validated, normalized DNS domain names.
//
// A DomainName holds a lowercase FQDN without a trailing dot. Validation is
// deliberately RFC-1035-shaped but tolerant of underscore labels (seen in
// real traffic). All of Segugio's higher layers treat domain names as opaque
// interned ids; this type is the boundary where raw strings are checked.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace seg::dns {

class DomainName {
 public:
  /// Normalizes (lowercases, strips one trailing dot) and validates `text`.
  /// Throws util::ParseError when the name is not a plausible DNS name.
  static DomainName parse(std::string_view text);

  /// Returns true when `text` would be accepted by parse().
  static bool is_valid(std::string_view text);

  /// Returns true when `text` is already in normalized form (no uppercase
  /// letters, no trailing dot), i.e. parse(text).str() == text for a valid
  /// name. Lets bulk ingest skip the normalizing copy on the common path.
  static bool is_normalized(std::string_view text);

  const std::string& str() const { return name_; }

  /// Labels in left-to-right order: "www.example.com" -> {www, example, com}.
  std::vector<std::string_view> labels() const;

  std::size_t label_count() const;

  /// Top-level domain (rightmost label).
  std::string_view tld() const;

  /// Parent domain ("www.example.com" -> "example.com"); empty for a TLD.
  std::string_view parent() const;

  /// True if this name equals `ancestor` or is a subdomain of it.
  bool is_subdomain_of(std::string_view ancestor) const;

  friend bool operator==(const DomainName&, const DomainName&) = default;

 private:
  explicit DomainName(std::string name) : name_(std::move(name)) {}

  std::string name_;
};

}  // namespace seg::dns
