// Remediation workflow: from one day of traffic to a prioritized list of
// machines to clean up (Section VI's operational argument).
//
// Train on today's traffic, calibrate the detection threshold for a 1% FP
// budget on today's known domains, detect new control domains among the
// unknowns, and print the worklist of implicated machines — including the
// infections a blacklist-only workflow would have missed.
//
// Build & run:  ./build/examples/remediation
#include <cstdio>

#include "core/calibration.h"
#include "core/infection_report.h"
#include "sim/world.h"

int main() {
  using namespace seg;

  sim::World world{sim::ScenarioConfig::small()};
  core::SegugioConfig config;
  config.forest.num_trees = 60;
  config.forest.num_threads = 1;

  const dns::Day day = 1;
  const auto trace = world.generate_day(0, day);
  const auto graph = core::Segugio::prepare_graph(
                         trace, world.psl(),
                         world.blacklist().as_of(sim::BlacklistKind::kCommercial, day),
                         world.whitelist().all(), config.prepare_options())
                         .graph;
  core::Segugio segugio(config);
  segugio.train(graph, world.activity(), world.pdns());

  const auto calibration =
      core::calibrate_threshold(segugio, graph, world.activity(), world.pdns(), 0.01);
  std::printf("calibrated threshold %.3f (TPR %.2f at FPR %.4f on %zu known domains)\n",
              calibration.threshold, calibration.achieved_tpr, calibration.achieved_fpr,
              calibration.malware_domains + calibration.benign_domains);

  const auto detections = segugio.classify(graph, world.activity(), world.pdns());
  const auto report =
      core::enumerate_infections(graph, detections, calibration.threshold);

  std::printf("\nremediation worklist: %zu machines (%zu found only via new detections)\n",
              report.machines.size(), report.newly_implicated);
  std::printf("%-14s %-9s %-22s %s\n", "machine", "evidence", "ground truth",
              "top implicating domains");
  std::size_t shown = 0;
  for (const auto& machine : report.machines) {
    if (shown++ >= 12) {
      break;
    }
    std::string domains;
    for (std::size_t i = 0; i < machine.known_domains.size() && i < 2; ++i) {
      domains += machine.known_domains[i] + " ";
    }
    for (std::size_t i = 0; i < machine.detected_domains.size() && i < 2; ++i) {
      domains += machine.detected_domains[i].name + "(new) ";
    }
    std::printf("%-14s %-9zu %-22s %s\n", machine.name.c_str(), machine.evidence(),
                world.is_infected_machine(machine.name) ? "[infected]" : "[check manually]",
                domains.c_str());
  }
  return 0;
}
