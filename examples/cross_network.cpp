// Cross-network deployment: train Segugio on one ISP's traffic, deploy the
// model unchanged in a different ISP (Section IV-A's third experiment).
//
// The model also survives serialization — we save the trained forest to a
// string and reload it, as a real cross-site deployment would.
//
// Build & run:  ./build/examples/cross_network
#include <cstdio>
#include <sstream>

#include "core/experiment.h"
#include "sim/world.h"

int main() {
  using namespace seg;

  sim::World world{sim::ScenarioConfig::small()};

  core::SegugioConfig config;
  config.forest.num_trees = 60;
  config.forest.num_threads = 1;

  // Train on ISP1 day 1, test on ISP2 day 6 (5-day gap).
  const auto train_trace = world.generate_day(0, 1);
  const auto test_trace = world.generate_day(1, 6);

  core::ExperimentInputs inputs;
  inputs.train_trace = &train_trace;
  inputs.test_trace = &test_trace;
  inputs.psl = &world.psl();
  inputs.activity = &world.activity();
  inputs.pdns = &world.pdns();
  inputs.train_blacklist = world.blacklist().as_of(sim::BlacklistKind::kCommercial, 1);
  inputs.test_blacklist = world.blacklist().as_of(sim::BlacklistKind::kCommercial, 6);
  inputs.whitelist = world.whitelist().all();

  const auto result = core::run_cross_day(inputs, config);
  const auto roc = result.roc();

  std::printf("cross-network test (train ISP1 day 1 -> test ISP2 day 6)\n");
  std::printf("test domains: %zu malicious, %zu benign\n", result.test_malicious(),
              result.test_benign());
  std::printf("AUC: %.4f\n", roc.auc());
  for (const double fpr : {0.001, 0.005, 0.01, 0.02, 0.05}) {
    std::printf("  TPR at FPR <= %.3f: %.3f\n", fpr, roc.tpr_at_fpr(fpr));
  }

  // Model portability: serialize / deserialize a trained forest.
  ml::RandomForestConfig forest_config;
  forest_config.num_trees = 20;
  forest_config.num_threads = 1;
  ml::RandomForest forest(forest_config);
  {
    // Train a stand-alone forest on the same task to demonstrate the
    // save/load path end to end.
    const auto graph = core::Segugio::prepare_graph(train_trace, world.psl(),
                                                    inputs.train_blacklist, inputs.whitelist,
                                                    config.prepare_options())
                           .graph;
    const features::FeatureExtractor extractor(graph, world.activity(), world.pdns());
    const auto training = features::build_training_set(graph, extractor);
    forest.train(training.dataset);
  }
  std::stringstream blob;
  forest.save(blob);
  const auto restored = ml::RandomForest::load(blob);
  std::printf("\nserialized model: %zu trees, %zu bytes; reload OK (%zu trees)\n",
              forest.tree_count(), blob.str().size(), restored.tree_count());
  return 0;
}
