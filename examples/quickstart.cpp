// Quickstart: the whole Segugio pipeline on a hand-written toy trace.
//
//   1. describe one day of DNS query logs (who queried what);
//   2. label ground truth from a blacklist and a whitelist;
//   3. train the behavior-based classifier;
//   4. classify the unknown domains of a second day and print detections.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/segugio.h"
#include "graph/labeling.h"

namespace {

using seg::dns::DayTrace;
using seg::dns::IpV4;

// One day of traffic: machines i1/i2 are infected (they query the known C&C
// domain plus, on day 2, a *new* C&C domain); b1..b3 only browse.
DayTrace make_day(seg::dns::Day day) {
  DayTrace trace;
  trace.day = day;
  const auto q = [&](const char* machine, const char* domain, const char* ip) {
    trace.records.push_back({day, machine, domain, {IpV4::parse(ip)}});
  };
  // Benign browsing: everyone hits the popular sites.
  for (const char* machine : {"i1", "i2", "b1", "b2", "b3"}) {
    q(machine, "www.search-engine.com", "23.0.0.10");
    q(machine, "news.daily-paper.com", "23.0.1.10");
    q(machine, "cdn.video-site.com", "23.0.2.10");
    q(machine, "mail.web-mail.org", "23.0.3.10");
    q(machine, "shop.mega-store.net", "23.0.4.10");
    q(machine, "www.social-net.com", "23.0.5.10");
  }
  // The known C&C domain, queried by both infected machines every day.
  q("i1", "update.known-evil.biz", "185.66.1.10");
  q("i2", "update.known-evil.biz", "185.66.1.10");
  // Day 2: the malware relocates to a NEW control domain in the same
  // bulletproof /24 — this is what Segugio is built to catch.
  if (day >= 2) {
    q("i1", "panel.fresh-evil.info", "185.66.1.77");
    q("i2", "panel.fresh-evil.info", "185.66.1.77");
  }
  // A sixth machine that never touches the popular sites. It keeps the R4
  // "too popular" threshold (a fraction of ALL machines) above the sites'
  // machine counts in this tiny example; R1 prunes it away afterwards.
  q("lurker", "one-off-a.example.org", "23.9.0.1");
  q("lurker", "one-off-b.example.org", "23.9.0.2");
  return trace;
}

}  // namespace

int main() {
  const auto psl = seg::dns::PublicSuffixList::with_default_rules();

  // Ground truth sources.
  seg::graph::NameSet blacklist;
  blacklist.insert("update.known-evil.biz");
  seg::graph::NameSet whitelist;  // popular effective 2LDs
  for (const char* e2ld : {"search-engine.com", "daily-paper.com", "video-site.com",
                           "web-mail.org", "mega-store.net", "social-net.com"}) {
    whitelist.insert(e2ld);
  }

  // History substrates: domain activity and passive DNS. The known C&C IP
  // space was abused before; the popular sites have been active for weeks.
  seg::dns::DomainActivityIndex activity;
  seg::dns::PassiveDnsDb pdns;
  for (seg::dns::Day day = -30; day <= 0; ++day) {
    for (const char* name : {"www.search-engine.com", "search-engine.com",
                             "news.daily-paper.com", "daily-paper.com",
                             "cdn.video-site.com", "video-site.com",
                             "mail.web-mail.org", "web-mail.org",
                             "shop.mega-store.net", "mega-store.net",
                             "www.social-net.com", "social-net.com"}) {
      activity.mark_active(name, day);
    }
    activity.mark_active("update.known-evil.biz", day);
    activity.mark_active("known-evil.biz", day);
    pdns.add_observation(day, IpV4::parse("185.66.1.10"),
                         seg::dns::PdnsAssociation::kMalware);
    // The bulletproof /24 hosted other C&C servers in the past, including
    // the address the malware will relocate to.
    pdns.add_observation(day, IpV4::parse("185.66.1.77"),
                         seg::dns::PdnsAssociation::kMalware);
    for (int site = 0; site < 6; ++site) {
      pdns.add_observation(day, IpV4::from_octets(23, 0, static_cast<uint8_t>(site), 10),
                           seg::dns::PdnsAssociation::kBenign);
    }
  }

  // Toy-friendly knobs: the defaults assume thousands of machines.
  seg::core::SegugioConfig config;
  config.pruning.inactive_machine_max_degree = 2;
  config.pruning.popular_e2ld_fraction = 1.0;  // don't prune the popular sites
  config.forest.num_trees = 30;
  config.forest.num_threads = 1;

  // --- Train on day 1.
  const auto day1 = make_day(1);
  const auto graph1 = seg::core::Segugio::prepare_graph(day1, psl, blacklist, whitelist,
                                                        config.prepare_options())
                          .graph;
  seg::core::Segugio segugio(config);
  segugio.train(graph1, activity, pdns);
  std::printf("trained on day 1: %zu machines, %zu domains (%zu known malware)\n",
              graph1.machine_count(), graph1.domain_count(),
              graph1.count_domains_with(seg::graph::Label::kMalware));

  // --- Classify day 2 (mark the new day active first).
  const auto day2 = make_day(2);
  activity.mark_active("panel.fresh-evil.info", 2);
  activity.mark_active("fresh-evil.info", 2);
  const auto graph2 = seg::core::Segugio::prepare_graph(day2, psl, blacklist, whitelist,
                                                        config.prepare_options())
                          .graph;
  const auto report = segugio.classify(graph2, activity, pdns);

  std::printf("\nunknown domains on day 2, by malware score:\n");
  for (const auto& scored : report.scores) {
    std::printf("  %-24s %.3f\n", scored.name.c_str(), scored.score);
  }
  std::printf("\ndetections at threshold 0.5 (with implicated machines):\n");
  for (const auto& detection : report.detections_at(0.5)) {
    std::printf("  %-24s %.3f  machines:", detection.domain.name.c_str(),
                detection.domain.score);
    for (const auto& machine : detection.machines) {
      std::printf(" %s", machine.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
