// ISP deployment walkthrough on the synthetic ISP world.
//
// Mirrors the paper's operational story (Section II, Figure 2) as a
// streaming multi-day session: one core::Pipeline owns the history stores
// and the carried name dictionary, ingests a day of resolver traffic,
// trains, then ingests and classifies the next day's *unknown* domains,
// reporting the detected malware-control domains together with the
// infected machines that query them and the pipeline timing breakdown
// (Section IV-G).
//
// Build & run:  ./build/examples/isp_deployment
#include <algorithm>
#include <cstdio>

#include "core/pipeline.h"
#include "sim/world.h"
#include "util/obs/trace.h"

int main() {
  using namespace seg;

  sim::World world{sim::ScenarioConfig::small()};
  const auto& whitelist = world.whitelist().all();

  core::SegugioConfig config;
  config.forest.num_trees = 60;
  config.forest.num_threads = 1;

  // --- Day 0: learn. The trace enters through the streaming API: a
  // TraceSource wrapping the in-memory day, cut at day boundaries by
  // ingest_stream (a live deployment swaps in dns::FileTraceSource over a
  // dnstap or pcap capture and nothing else changes).
  obs::Span train_span("example/train_day");
  const auto train_trace = world.generate_day(/*isp=*/0, /*day=*/0);
  core::Pipeline pipeline(world.psl(), world.activity(), world.pdns(), config);
  core::PreparedDay day0;
  {
    dns::DayTraceSource source(train_trace);
    const auto& blacklist = world.blacklist().as_of(sim::BlacklistKind::kCommercial, 0);
    pipeline.ingest_stream(
        source, [&](dns::Day) -> const graph::NameSet& { return blacklist; }, whitelist,
        [&](core::PreparedDay&& day) { day0 = std::move(day); });
  }
  pipeline.train(day0);
  const double train_seconds = train_span.close();
  const auto& train_graph = day0.graph;
  const auto& prune_stats = day0.prune_stats;
  const auto& segugio = pipeline.detector();

  std::printf("== training day 0 ==\n");
  std::printf("records: %zu   graph: %zu machines, %zu domains, %zu edges\n",
              train_trace.records.size(), train_graph.machine_count(),
              train_graph.domain_count(), train_graph.edge_count());
  std::printf("pruning: -%.1f%% machines, -%.1f%% domains, -%.1f%% edges\n",
              100.0 * prune_stats.machine_reduction(),
              100.0 * prune_stats.domain_reduction(), 100.0 * prune_stats.edge_reduction());
  std::printf("known malware domains: %zu   infected machines: %zu\n",
              train_graph.count_domains_with(graph::Label::kMalware),
              train_graph.count_machines_with(graph::Label::kMalware));
  std::printf("train wall time: %.2fs (features %.2fs, fit %.2fs)\n\n", train_seconds,
              segugio.timings().train_feature_seconds, segugio.timings().train_fit_seconds);

  // --- Day 1: detect. The same session carries the name dictionary and
  // history stores forward; only genuinely new names pay full intern cost.
  obs::Span detect_span("example/detect_day");
  const auto test_trace = world.generate_day(0, 1);
  pipeline.absorb_history(world.activity(), world.pdns());
  core::PreparedDay day1;
  {
    dns::DayTraceSource source(test_trace);
    const auto& blacklist = world.blacklist().as_of(sim::BlacklistKind::kCommercial, 1);
    pipeline.ingest_stream(
        source, [&](dns::Day) -> const graph::NameSet& { return blacklist; }, whitelist,
        [&](core::PreparedDay&& day) { day1 = std::move(day); });
  }
  const auto report = pipeline.classify(day1);
  const double classify_seconds = detect_span.close();
  std::printf("name dictionary reuse on day 1: %.1f%% of %zu distinct names\n",
              100.0 * day1.carry.reuse_ratio(), day1.carry.distinct_domains);

  std::printf("== detection day 1 ==\n");
  std::printf("unknown domains classified: %zu in %.2fs\n", report.scores.size(),
              classify_seconds);

  auto ranked = report.scores;
  std::sort(ranked.begin(), ranked.end(),
            [](const core::DomainScore& a, const core::DomainScore& b) {
              return a.score > b.score;
            });
  std::printf("top-scored unknown domains:\n");
  for (std::size_t i = 0; i < 10 && i < ranked.size(); ++i) {
    std::printf("  %-32s %.3f %s\n", ranked[i].name.c_str(), ranked[i].score,
                world.is_true_malware(ranked[i].name) ? "[true C&C]" : "");
  }

  const double threshold = 0.7;
  const auto detections = report.detections_at(threshold);
  std::printf("detections at threshold %.2f: %zu\n", threshold, detections.size());
  std::size_t shown = 0;
  std::size_t truly_malware = 0;
  for (const auto& detection : detections) {
    const bool is_malware = world.is_true_malware(detection.domain.name);
    truly_malware += is_malware ? 1 : 0;
    if (shown < 15) {
      std::printf("  %-32s score=%.3f %-14s machines: %zu\n",
                  detection.domain.name.c_str(), detection.domain.score,
                  is_malware ? "[true C&C]" : "[verify!]", detection.machines.size());
      ++shown;
    }
  }
  std::printf("\nground truth (the operator would not know this): %zu/%zu detections are "
              "true malware-control domains\n",
              truly_malware, detections.size());

  // Feature importance: which evidence the forest leans on.
  const auto importance = segugio.feature_importance();
  std::printf("\nfeature importance:\n");
  const auto& names = features::feature_names();
  for (std::size_t f = 0; f < importance.size(); ++f) {
    std::printf("  %-28s %.3f\n", names[f].c_str(), importance[f]);
  }
  return 0;
}
