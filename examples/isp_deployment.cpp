// ISP deployment walkthrough on the synthetic ISP world.
//
// Mirrors the paper's operational story (Section II, Figure 2): build the
// machine-domain behavior graph from one day of a large ISP's resolver
// traffic, train, then classify the next day's *unknown* domains, report
// the detected malware-control domains together with the infected machines
// that query them, and show the pipeline timing breakdown (Section IV-G).
//
// Build & run:  ./build/examples/isp_deployment
#include <algorithm>
#include <cstdio>

#include "core/segugio.h"
#include "sim/world.h"
#include "util/stopwatch.h"

int main() {
  using namespace seg;

  sim::World world{sim::ScenarioConfig::small()};
  const auto& whitelist = world.whitelist().all();

  core::SegugioConfig config;
  config.forest.num_trees = 60;
  config.forest.num_threads = 1;

  // --- Day 0: learn.
  util::Stopwatch watch;
  const auto train_trace = world.generate_day(/*isp=*/0, /*day=*/0);
  graph::PruneStats prune_stats;
  const auto train_graph = core::Segugio::prepare_graph(
      train_trace, world.psl(), world.blacklist().as_of(sim::BlacklistKind::kCommercial, 0),
      whitelist, config.pruning, &prune_stats);
  core::Segugio segugio(config);
  segugio.train(train_graph, world.activity(), world.pdns());
  const double train_seconds = watch.elapsed_seconds();

  std::printf("== training day 0 ==\n");
  std::printf("records: %zu   graph: %zu machines, %zu domains, %zu edges\n",
              train_trace.records.size(), train_graph.machine_count(),
              train_graph.domain_count(), train_graph.edge_count());
  std::printf("pruning: -%.1f%% machines, -%.1f%% domains, -%.1f%% edges\n",
              100.0 * prune_stats.machine_reduction(),
              100.0 * prune_stats.domain_reduction(), 100.0 * prune_stats.edge_reduction());
  std::printf("known malware domains: %zu   infected machines: %zu\n",
              train_graph.count_domains_with(graph::Label::kMalware),
              train_graph.count_machines_with(graph::Label::kMalware));
  std::printf("train wall time: %.2fs (features %.2fs, fit %.2fs)\n\n", train_seconds,
              segugio.timings().train_feature_seconds, segugio.timings().train_fit_seconds);

  // --- Day 1: detect.
  watch.restart();
  const auto test_trace = world.generate_day(0, 1);
  const auto test_graph = core::Segugio::prepare_graph(
      test_trace, world.psl(), world.blacklist().as_of(sim::BlacklistKind::kCommercial, 1),
      whitelist, config.pruning);
  const auto report = segugio.classify(test_graph, world.activity(), world.pdns());
  const double classify_seconds = watch.elapsed_seconds();

  std::printf("== detection day 1 ==\n");
  std::printf("unknown domains classified: %zu in %.2fs\n", report.scores.size(),
              classify_seconds);

  auto ranked = report.scores;
  std::sort(ranked.begin(), ranked.end(),
            [](const core::DomainScore& a, const core::DomainScore& b) {
              return a.score > b.score;
            });
  std::printf("top-scored unknown domains:\n");
  for (std::size_t i = 0; i < 10 && i < ranked.size(); ++i) {
    std::printf("  %-32s %.3f %s\n", ranked[i].name.c_str(), ranked[i].score,
                world.is_true_malware(ranked[i].name) ? "[true C&C]" : "");
  }

  const double threshold = 0.7;
  const auto detections = report.detections_at(threshold, test_graph);
  std::printf("detections at threshold %.2f: %zu\n", threshold, detections.size());
  std::size_t shown = 0;
  std::size_t truly_malware = 0;
  for (const auto& detection : detections) {
    const bool is_malware = world.is_true_malware(detection.domain.name);
    truly_malware += is_malware ? 1 : 0;
    if (shown < 15) {
      std::printf("  %-32s score=%.3f %-14s machines: %zu\n",
                  detection.domain.name.c_str(), detection.domain.score,
                  is_malware ? "[true C&C]" : "[verify!]", detection.machines.size());
      ++shown;
    }
  }
  std::printf("\nground truth (the operator would not know this): %zu/%zu detections are "
              "true malware-control domains\n",
              truly_malware, detections.size());

  // Feature importance: which evidence the forest leans on.
  const auto importance = segugio.feature_importance();
  std::printf("\nfeature importance:\n");
  const auto& names = features::feature_names();
  for (std::size_t f = 0; f < importance.size(); ++f) {
    std::printf("  %-28s %.3f\n", names[f].c_str(), importance[f]);
  }
  return 0;
}
