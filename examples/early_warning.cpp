// Early-warning loop: detect malware-control domains before the blacklist
// lists them (the Section IV-F scenario).
//
// For several consecutive days the operator trains on the day's traffic,
// detects new suspicious domains among the *unknown* ones, and files them.
// Afterwards we check, against the (lagged) commercial blacklist, how many
// detected domains were later confirmed — and by how many days Segugio was
// ahead.
//
// Build & run:  ./build/examples/early_warning
#include <cstdio>
#include <map>
#include <string>

#include "core/calibration.h"
#include "core/segugio.h"
#include "ml/metrics.h"
#include "sim/world.h"

int main() {
  using namespace seg;

  sim::World world{sim::ScenarioConfig::small()};
  core::SegugioConfig config;
  config.forest.num_trees = 60;
  config.forest.num_threads = 1;

  constexpr dns::Day kFirstDay = 0;
  constexpr dns::Day kLastDay = 3;
  constexpr dns::Day kLookaheadDays = 35;
  constexpr double kFprBudget = 0.02;

  // domain -> day Segugio first flagged it
  std::map<std::string, dns::Day> flagged;

  for (dns::Day day = kFirstDay; day <= kLastDay; ++day) {
    const auto trace = world.generate_day(0, day);
    const auto blacklist = world.blacklist().as_of(sim::BlacklistKind::kCommercial, day);
    const auto graph = core::Segugio::prepare_graph(trace, world.psl(), blacklist,
                                                    world.whitelist().all(),
                                                    config.prepare_options())
                           .graph;
    core::Segugio segugio(config);
    segugio.train(graph, world.activity(), world.pdns());

    // Threshold calibrated on the training day's own known domains (their
    // labels hidden), for the target FP budget.
    const double threshold =
        core::calibrate_threshold(segugio, graph, world.activity(), world.pdns(), kFprBudget)
            .threshold;

    const auto report = segugio.classify(graph, world.activity(), world.pdns());
    std::size_t new_flags = 0;
    for (const auto& scored : report.scores) {
      if (scored.score >= threshold && !flagged.contains(scored.name)) {
        flagged.emplace(scored.name, day);
        ++new_flags;
      }
    }
    std::printf("day %d: threshold=%.3f, %zu unknown domains, %zu new flags\n", day,
                threshold, report.scores.size(), new_flags);
  }

  // Confirmations: flagged domains that the blacklist added within the
  // following 35 days.
  std::printf("\n== early-detection results (lookahead %d days) ==\n", kLookaheadDays);
  std::map<dns::Day, int> gap_histogram;
  std::size_t confirmed = 0;
  for (const auto& [name, detect_day] : flagged) {
    const auto listed = world.blacklist().listed_day(name, sim::BlacklistKind::kCommercial);
    if (!listed.has_value() || *listed <= detect_day ||
        *listed > detect_day + kLookaheadDays) {
      continue;
    }
    ++confirmed;
    ++gap_histogram[*listed - detect_day];
  }
  std::printf("flagged domains: %zu, later blacklisted: %zu\n", flagged.size(), confirmed);
  std::printf("lead time (days before blacklist) -> count:\n");
  for (const auto& [gap, count] : gap_histogram) {
    std::printf("  %2d days early: %d\n", gap, count);
  }
  return 0;
}
