file(REMOVE_RECURSE
  "CMakeFiles/seg_util.dir/args.cpp.o"
  "CMakeFiles/seg_util.dir/args.cpp.o.d"
  "CMakeFiles/seg_util.dir/csv.cpp.o"
  "CMakeFiles/seg_util.dir/csv.cpp.o.d"
  "CMakeFiles/seg_util.dir/histogram.cpp.o"
  "CMakeFiles/seg_util.dir/histogram.cpp.o.d"
  "CMakeFiles/seg_util.dir/interner.cpp.o"
  "CMakeFiles/seg_util.dir/interner.cpp.o.d"
  "CMakeFiles/seg_util.dir/logging.cpp.o"
  "CMakeFiles/seg_util.dir/logging.cpp.o.d"
  "CMakeFiles/seg_util.dir/rng.cpp.o"
  "CMakeFiles/seg_util.dir/rng.cpp.o.d"
  "CMakeFiles/seg_util.dir/strings.cpp.o"
  "CMakeFiles/seg_util.dir/strings.cpp.o.d"
  "CMakeFiles/seg_util.dir/table.cpp.o"
  "CMakeFiles/seg_util.dir/table.cpp.o.d"
  "CMakeFiles/seg_util.dir/thread_pool.cpp.o"
  "CMakeFiles/seg_util.dir/thread_pool.cpp.o.d"
  "libseg_util.a"
  "libseg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
