file(REMOVE_RECURSE
  "libseg_util.a"
)
