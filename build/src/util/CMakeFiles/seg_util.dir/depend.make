# Empty dependencies file for seg_util.
# This may be replaced when dependencies are built.
