file(REMOVE_RECURSE
  "libseg_sim.a"
)
