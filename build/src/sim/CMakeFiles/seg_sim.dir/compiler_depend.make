# Empty compiler generated dependencies file for seg_sim.
# This may be replaced when dependencies are built.
