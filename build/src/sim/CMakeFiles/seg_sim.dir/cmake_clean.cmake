file(REMOVE_RECURSE
  "CMakeFiles/seg_sim.dir/blacklist_service.cpp.o"
  "CMakeFiles/seg_sim.dir/blacklist_service.cpp.o.d"
  "CMakeFiles/seg_sim.dir/config.cpp.o"
  "CMakeFiles/seg_sim.dir/config.cpp.o.d"
  "CMakeFiles/seg_sim.dir/whitelist_service.cpp.o"
  "CMakeFiles/seg_sim.dir/whitelist_service.cpp.o.d"
  "CMakeFiles/seg_sim.dir/world.cpp.o"
  "CMakeFiles/seg_sim.dir/world.cpp.o.d"
  "libseg_sim.a"
  "libseg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
