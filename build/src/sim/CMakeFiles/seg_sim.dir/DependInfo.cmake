
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/blacklist_service.cpp" "src/sim/CMakeFiles/seg_sim.dir/blacklist_service.cpp.o" "gcc" "src/sim/CMakeFiles/seg_sim.dir/blacklist_service.cpp.o.d"
  "/root/repo/src/sim/config.cpp" "src/sim/CMakeFiles/seg_sim.dir/config.cpp.o" "gcc" "src/sim/CMakeFiles/seg_sim.dir/config.cpp.o.d"
  "/root/repo/src/sim/whitelist_service.cpp" "src/sim/CMakeFiles/seg_sim.dir/whitelist_service.cpp.o" "gcc" "src/sim/CMakeFiles/seg_sim.dir/whitelist_service.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/sim/CMakeFiles/seg_sim.dir/world.cpp.o" "gcc" "src/sim/CMakeFiles/seg_sim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/seg_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/seg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/seg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
