file(REMOVE_RECURSE
  "libseg_dns.a"
)
