file(REMOVE_RECURSE
  "CMakeFiles/seg_dns.dir/activity_index.cpp.o"
  "CMakeFiles/seg_dns.dir/activity_index.cpp.o.d"
  "CMakeFiles/seg_dns.dir/domain_name.cpp.o"
  "CMakeFiles/seg_dns.dir/domain_name.cpp.o.d"
  "CMakeFiles/seg_dns.dir/ip.cpp.o"
  "CMakeFiles/seg_dns.dir/ip.cpp.o.d"
  "CMakeFiles/seg_dns.dir/pdns.cpp.o"
  "CMakeFiles/seg_dns.dir/pdns.cpp.o.d"
  "CMakeFiles/seg_dns.dir/public_suffix_list.cpp.o"
  "CMakeFiles/seg_dns.dir/public_suffix_list.cpp.o.d"
  "CMakeFiles/seg_dns.dir/query_log.cpp.o"
  "CMakeFiles/seg_dns.dir/query_log.cpp.o.d"
  "libseg_dns.a"
  "libseg_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seg_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
