
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/activity_index.cpp" "src/dns/CMakeFiles/seg_dns.dir/activity_index.cpp.o" "gcc" "src/dns/CMakeFiles/seg_dns.dir/activity_index.cpp.o.d"
  "/root/repo/src/dns/domain_name.cpp" "src/dns/CMakeFiles/seg_dns.dir/domain_name.cpp.o" "gcc" "src/dns/CMakeFiles/seg_dns.dir/domain_name.cpp.o.d"
  "/root/repo/src/dns/ip.cpp" "src/dns/CMakeFiles/seg_dns.dir/ip.cpp.o" "gcc" "src/dns/CMakeFiles/seg_dns.dir/ip.cpp.o.d"
  "/root/repo/src/dns/pdns.cpp" "src/dns/CMakeFiles/seg_dns.dir/pdns.cpp.o" "gcc" "src/dns/CMakeFiles/seg_dns.dir/pdns.cpp.o.d"
  "/root/repo/src/dns/public_suffix_list.cpp" "src/dns/CMakeFiles/seg_dns.dir/public_suffix_list.cpp.o" "gcc" "src/dns/CMakeFiles/seg_dns.dir/public_suffix_list.cpp.o.d"
  "/root/repo/src/dns/query_log.cpp" "src/dns/CMakeFiles/seg_dns.dir/query_log.cpp.o" "gcc" "src/dns/CMakeFiles/seg_dns.dir/query_log.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/seg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
