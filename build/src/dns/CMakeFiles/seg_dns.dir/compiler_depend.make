# Empty compiler generated dependencies file for seg_dns.
# This may be replaced when dependencies are built.
