file(REMOVE_RECURSE
  "CMakeFiles/seg_baselines.dir/cooccurrence.cpp.o"
  "CMakeFiles/seg_baselines.dir/cooccurrence.cpp.o.d"
  "CMakeFiles/seg_baselines.dir/lbp.cpp.o"
  "CMakeFiles/seg_baselines.dir/lbp.cpp.o.d"
  "CMakeFiles/seg_baselines.dir/notos_like.cpp.o"
  "CMakeFiles/seg_baselines.dir/notos_like.cpp.o.d"
  "libseg_baselines.a"
  "libseg_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seg_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
