# Empty compiler generated dependencies file for seg_baselines.
# This may be replaced when dependencies are built.
