file(REMOVE_RECURSE
  "libseg_baselines.a"
)
