# Empty compiler generated dependencies file for seg_ml.
# This may be replaced when dependencies are built.
