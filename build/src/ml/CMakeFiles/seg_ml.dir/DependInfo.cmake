
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/classifier.cpp" "src/ml/CMakeFiles/seg_ml.dir/classifier.cpp.o" "gcc" "src/ml/CMakeFiles/seg_ml.dir/classifier.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/seg_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/seg_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/seg_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/seg_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/logistic_regression.cpp" "src/ml/CMakeFiles/seg_ml.dir/logistic_regression.cpp.o" "gcc" "src/ml/CMakeFiles/seg_ml.dir/logistic_regression.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/seg_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/seg_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/seg_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/seg_ml.dir/random_forest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/seg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
