file(REMOVE_RECURSE
  "libseg_ml.a"
)
