file(REMOVE_RECURSE
  "CMakeFiles/seg_ml.dir/classifier.cpp.o"
  "CMakeFiles/seg_ml.dir/classifier.cpp.o.d"
  "CMakeFiles/seg_ml.dir/dataset.cpp.o"
  "CMakeFiles/seg_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/seg_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/seg_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/seg_ml.dir/logistic_regression.cpp.o"
  "CMakeFiles/seg_ml.dir/logistic_regression.cpp.o.d"
  "CMakeFiles/seg_ml.dir/metrics.cpp.o"
  "CMakeFiles/seg_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/seg_ml.dir/random_forest.cpp.o"
  "CMakeFiles/seg_ml.dir/random_forest.cpp.o.d"
  "libseg_ml.a"
  "libseg_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seg_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
