file(REMOVE_RECURSE
  "CMakeFiles/seg_core.dir/calibration.cpp.o"
  "CMakeFiles/seg_core.dir/calibration.cpp.o.d"
  "CMakeFiles/seg_core.dir/diagnostics.cpp.o"
  "CMakeFiles/seg_core.dir/diagnostics.cpp.o.d"
  "CMakeFiles/seg_core.dir/experiment.cpp.o"
  "CMakeFiles/seg_core.dir/experiment.cpp.o.d"
  "CMakeFiles/seg_core.dir/fp_analysis.cpp.o"
  "CMakeFiles/seg_core.dir/fp_analysis.cpp.o.d"
  "CMakeFiles/seg_core.dir/infection_report.cpp.o"
  "CMakeFiles/seg_core.dir/infection_report.cpp.o.d"
  "CMakeFiles/seg_core.dir/segugio.cpp.o"
  "CMakeFiles/seg_core.dir/segugio.cpp.o.d"
  "libseg_core.a"
  "libseg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
