
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/calibration.cpp" "src/core/CMakeFiles/seg_core.dir/calibration.cpp.o" "gcc" "src/core/CMakeFiles/seg_core.dir/calibration.cpp.o.d"
  "/root/repo/src/core/diagnostics.cpp" "src/core/CMakeFiles/seg_core.dir/diagnostics.cpp.o" "gcc" "src/core/CMakeFiles/seg_core.dir/diagnostics.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/seg_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/seg_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/fp_analysis.cpp" "src/core/CMakeFiles/seg_core.dir/fp_analysis.cpp.o" "gcc" "src/core/CMakeFiles/seg_core.dir/fp_analysis.cpp.o.d"
  "/root/repo/src/core/infection_report.cpp" "src/core/CMakeFiles/seg_core.dir/infection_report.cpp.o" "gcc" "src/core/CMakeFiles/seg_core.dir/infection_report.cpp.o.d"
  "/root/repo/src/core/segugio.cpp" "src/core/CMakeFiles/seg_core.dir/segugio.cpp.o" "gcc" "src/core/CMakeFiles/seg_core.dir/segugio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/features/CMakeFiles/seg_features.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/seg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/seg_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/seg_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/seg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
