# Empty dependencies file for seg_core.
# This may be replaced when dependencies are built.
