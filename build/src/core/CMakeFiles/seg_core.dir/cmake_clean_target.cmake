file(REMOVE_RECURSE
  "libseg_core.a"
)
