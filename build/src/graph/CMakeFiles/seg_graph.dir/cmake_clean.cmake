file(REMOVE_RECURSE
  "CMakeFiles/seg_graph.dir/graph.cpp.o"
  "CMakeFiles/seg_graph.dir/graph.cpp.o.d"
  "CMakeFiles/seg_graph.dir/graph_io.cpp.o"
  "CMakeFiles/seg_graph.dir/graph_io.cpp.o.d"
  "CMakeFiles/seg_graph.dir/labeling.cpp.o"
  "CMakeFiles/seg_graph.dir/labeling.cpp.o.d"
  "CMakeFiles/seg_graph.dir/prober_filter.cpp.o"
  "CMakeFiles/seg_graph.dir/prober_filter.cpp.o.d"
  "CMakeFiles/seg_graph.dir/pruning.cpp.o"
  "CMakeFiles/seg_graph.dir/pruning.cpp.o.d"
  "libseg_graph.a"
  "libseg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
