# Empty dependencies file for seg_graph.
# This may be replaced when dependencies are built.
