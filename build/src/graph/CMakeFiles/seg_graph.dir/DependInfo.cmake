
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/seg_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/seg_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/graph_io.cpp" "src/graph/CMakeFiles/seg_graph.dir/graph_io.cpp.o" "gcc" "src/graph/CMakeFiles/seg_graph.dir/graph_io.cpp.o.d"
  "/root/repo/src/graph/labeling.cpp" "src/graph/CMakeFiles/seg_graph.dir/labeling.cpp.o" "gcc" "src/graph/CMakeFiles/seg_graph.dir/labeling.cpp.o.d"
  "/root/repo/src/graph/prober_filter.cpp" "src/graph/CMakeFiles/seg_graph.dir/prober_filter.cpp.o" "gcc" "src/graph/CMakeFiles/seg_graph.dir/prober_filter.cpp.o.d"
  "/root/repo/src/graph/pruning.cpp" "src/graph/CMakeFiles/seg_graph.dir/pruning.cpp.o" "gcc" "src/graph/CMakeFiles/seg_graph.dir/pruning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/seg_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/seg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
