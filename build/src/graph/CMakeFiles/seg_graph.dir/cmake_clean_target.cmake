file(REMOVE_RECURSE
  "libseg_graph.a"
)
