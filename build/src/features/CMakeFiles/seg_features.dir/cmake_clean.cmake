file(REMOVE_RECURSE
  "CMakeFiles/seg_features.dir/extractor.cpp.o"
  "CMakeFiles/seg_features.dir/extractor.cpp.o.d"
  "CMakeFiles/seg_features.dir/feature_config.cpp.o"
  "CMakeFiles/seg_features.dir/feature_config.cpp.o.d"
  "CMakeFiles/seg_features.dir/training_set.cpp.o"
  "CMakeFiles/seg_features.dir/training_set.cpp.o.d"
  "libseg_features.a"
  "libseg_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seg_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
