# Empty dependencies file for seg_features.
# This may be replaced when dependencies are built.
