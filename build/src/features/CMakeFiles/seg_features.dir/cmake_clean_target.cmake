file(REMOVE_RECURSE
  "libseg_features.a"
)
