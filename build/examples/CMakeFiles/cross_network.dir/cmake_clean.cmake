file(REMOVE_RECURSE
  "CMakeFiles/cross_network.dir/cross_network.cpp.o"
  "CMakeFiles/cross_network.dir/cross_network.cpp.o.d"
  "cross_network"
  "cross_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
