file(REMOVE_RECURSE
  "CMakeFiles/early_warning.dir/early_warning.cpp.o"
  "CMakeFiles/early_warning.dir/early_warning.cpp.o.d"
  "early_warning"
  "early_warning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/early_warning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
