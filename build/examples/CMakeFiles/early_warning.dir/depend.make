# Empty dependencies file for early_warning.
# This may be replaced when dependencies are built.
