file(REMOVE_RECURSE
  "CMakeFiles/remediation.dir/remediation.cpp.o"
  "CMakeFiles/remediation.dir/remediation.cpp.o.d"
  "remediation"
  "remediation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remediation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
