# Empty compiler generated dependencies file for remediation.
# This may be replaced when dependencies are built.
