# Empty compiler generated dependencies file for bench_pruning_stats.
# This may be replaced when dependencies are built.
