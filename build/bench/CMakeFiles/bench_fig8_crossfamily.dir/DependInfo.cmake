
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_crossfamily.cpp" "bench/CMakeFiles/bench_fig8_crossfamily.dir/bench_fig8_crossfamily.cpp.o" "gcc" "bench/CMakeFiles/bench_fig8_crossfamily.dir/bench_fig8_crossfamily.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/seg_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/seg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/seg_features.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/seg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/seg_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/seg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/seg_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/seg_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/seg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
