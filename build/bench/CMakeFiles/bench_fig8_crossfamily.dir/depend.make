# Empty dependencies file for bench_fig8_crossfamily.
# This may be replaced when dependencies are built.
