file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_crossfamily.dir/bench_fig8_crossfamily.cpp.o"
  "CMakeFiles/bench_fig8_crossfamily.dir/bench_fig8_crossfamily.cpp.o.d"
  "bench_fig8_crossfamily"
  "bench_fig8_crossfamily.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_crossfamily.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
