file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_public_blacklist.dir/bench_fig10_public_blacklist.cpp.o"
  "CMakeFiles/bench_fig10_public_blacklist.dir/bench_fig10_public_blacklist.cpp.o.d"
  "bench_fig10_public_blacklist"
  "bench_fig10_public_blacklist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_public_blacklist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
