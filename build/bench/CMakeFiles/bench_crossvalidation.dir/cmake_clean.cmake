file(REMOVE_RECURSE
  "CMakeFiles/bench_crossvalidation.dir/bench_crossvalidation.cpp.o"
  "CMakeFiles/bench_crossvalidation.dir/bench_crossvalidation.cpp.o.d"
  "bench_crossvalidation"
  "bench_crossvalidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crossvalidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
