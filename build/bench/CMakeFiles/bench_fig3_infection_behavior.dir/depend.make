# Empty dependencies file for bench_fig3_infection_behavior.
# This may be replaced when dependencies are built.
