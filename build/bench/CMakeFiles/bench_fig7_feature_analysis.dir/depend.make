# Empty dependencies file for bench_fig7_feature_analysis.
# This may be replaced when dependencies are built.
