# Empty dependencies file for bench_table3_fp_analysis.
# This may be replaced when dependencies are built.
