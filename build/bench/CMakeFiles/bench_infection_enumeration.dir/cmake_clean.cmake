file(REMOVE_RECURSE
  "CMakeFiles/bench_infection_enumeration.dir/bench_infection_enumeration.cpp.o"
  "CMakeFiles/bench_infection_enumeration.dir/bench_infection_enumeration.cpp.o.d"
  "bench_infection_enumeration"
  "bench_infection_enumeration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_infection_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
