# Empty dependencies file for bench_infection_enumeration.
# This may be replaced when dependencies are built.
