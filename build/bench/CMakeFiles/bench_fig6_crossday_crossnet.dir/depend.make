# Empty dependencies file for bench_fig6_crossday_crossnet.
# This may be replaced when dependencies are built.
