file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_crossday_crossnet.dir/bench_fig6_crossday_crossnet.cpp.o"
  "CMakeFiles/bench_fig6_crossday_crossnet.dir/bench_fig6_crossday_crossnet.cpp.o.d"
  "bench_fig6_crossday_crossnet"
  "bench_fig6_crossday_crossnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_crossday_crossnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
