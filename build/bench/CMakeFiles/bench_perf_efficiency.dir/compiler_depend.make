# Empty compiler generated dependencies file for bench_perf_efficiency.
# This may be replaced when dependencies are built.
