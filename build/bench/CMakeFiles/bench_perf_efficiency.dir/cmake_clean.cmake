file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_efficiency.dir/bench_perf_efficiency.cpp.o"
  "CMakeFiles/bench_perf_efficiency.dir/bench_perf_efficiency.cpp.o.d"
  "bench_perf_efficiency"
  "bench_perf_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
