file(REMOVE_RECURSE
  "CMakeFiles/bench_lbp_comparison.dir/bench_lbp_comparison.cpp.o"
  "CMakeFiles/bench_lbp_comparison.dir/bench_lbp_comparison.cpp.o.d"
  "bench_lbp_comparison"
  "bench_lbp_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lbp_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
