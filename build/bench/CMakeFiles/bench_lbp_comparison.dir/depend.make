# Empty dependencies file for bench_lbp_comparison.
# This may be replaced when dependencies are built.
