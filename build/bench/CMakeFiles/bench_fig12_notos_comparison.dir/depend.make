# Empty dependencies file for bench_fig12_notos_comparison.
# This may be replaced when dependencies are built.
