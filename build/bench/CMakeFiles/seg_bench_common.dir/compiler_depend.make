# Empty compiler generated dependencies file for seg_bench_common.
# This may be replaced when dependencies are built.
