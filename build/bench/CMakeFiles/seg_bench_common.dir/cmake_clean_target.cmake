file(REMOVE_RECURSE
  "libseg_bench_common.a"
)
