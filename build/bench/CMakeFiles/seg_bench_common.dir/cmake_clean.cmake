file(REMOVE_RECURSE
  "CMakeFiles/seg_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/seg_bench_common.dir/bench_common.cpp.o.d"
  "libseg_bench_common.a"
  "libseg_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seg_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
