# Empty dependencies file for bench_fig11_early_detection.
# This may be replaced when dependencies are built.
