file(REMOVE_RECURSE
  "CMakeFiles/bench_probing_noise.dir/bench_probing_noise.cpp.o"
  "CMakeFiles/bench_probing_noise.dir/bench_probing_noise.cpp.o.d"
  "bench_probing_noise"
  "bench_probing_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_probing_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
