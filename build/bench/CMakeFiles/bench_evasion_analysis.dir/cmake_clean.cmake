file(REMOVE_RECURSE
  "CMakeFiles/bench_evasion_analysis.dir/bench_evasion_analysis.cpp.o"
  "CMakeFiles/bench_evasion_analysis.dir/bench_evasion_analysis.cpp.o.d"
  "bench_evasion_analysis"
  "bench_evasion_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_evasion_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
