# Empty compiler generated dependencies file for bench_evasion_analysis.
# This may be replaced when dependencies are built.
