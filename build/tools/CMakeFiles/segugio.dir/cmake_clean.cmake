file(REMOVE_RECURSE
  "CMakeFiles/segugio.dir/segugio_cli.cpp.o"
  "CMakeFiles/segugio.dir/segugio_cli.cpp.o.d"
  "segugio"
  "segugio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segugio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
