# Empty dependencies file for segugio.
# This may be replaced when dependencies are built.
