# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/dns_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
add_test(cli_smoke "bash" "/root/repo/tests/cli_smoke.sh" "/root/repo/build/tools/segugio")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;95;add_test;/root/repo/tests/CMakeLists.txt;0;")
