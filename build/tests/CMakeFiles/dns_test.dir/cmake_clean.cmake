file(REMOVE_RECURSE
  "CMakeFiles/dns_test.dir/dns/activity_index_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns/activity_index_test.cpp.o.d"
  "CMakeFiles/dns_test.dir/dns/domain_name_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns/domain_name_test.cpp.o.d"
  "CMakeFiles/dns_test.dir/dns/ip_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns/ip_test.cpp.o.d"
  "CMakeFiles/dns_test.dir/dns/pdns_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns/pdns_test.cpp.o.d"
  "CMakeFiles/dns_test.dir/dns/psl_property_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns/psl_property_test.cpp.o.d"
  "CMakeFiles/dns_test.dir/dns/public_suffix_list_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns/public_suffix_list_test.cpp.o.d"
  "CMakeFiles/dns_test.dir/dns/query_log_binary_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns/query_log_binary_test.cpp.o.d"
  "CMakeFiles/dns_test.dir/dns/query_log_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns/query_log_test.cpp.o.d"
  "CMakeFiles/dns_test.dir/dns/serialization_test.cpp.o"
  "CMakeFiles/dns_test.dir/dns/serialization_test.cpp.o.d"
  "dns_test"
  "dns_test.pdb"
  "dns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
