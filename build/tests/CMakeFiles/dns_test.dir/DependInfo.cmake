
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dns/activity_index_test.cpp" "tests/CMakeFiles/dns_test.dir/dns/activity_index_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns/activity_index_test.cpp.o.d"
  "/root/repo/tests/dns/domain_name_test.cpp" "tests/CMakeFiles/dns_test.dir/dns/domain_name_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns/domain_name_test.cpp.o.d"
  "/root/repo/tests/dns/ip_test.cpp" "tests/CMakeFiles/dns_test.dir/dns/ip_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns/ip_test.cpp.o.d"
  "/root/repo/tests/dns/pdns_test.cpp" "tests/CMakeFiles/dns_test.dir/dns/pdns_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns/pdns_test.cpp.o.d"
  "/root/repo/tests/dns/psl_property_test.cpp" "tests/CMakeFiles/dns_test.dir/dns/psl_property_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns/psl_property_test.cpp.o.d"
  "/root/repo/tests/dns/public_suffix_list_test.cpp" "tests/CMakeFiles/dns_test.dir/dns/public_suffix_list_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns/public_suffix_list_test.cpp.o.d"
  "/root/repo/tests/dns/query_log_binary_test.cpp" "tests/CMakeFiles/dns_test.dir/dns/query_log_binary_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns/query_log_binary_test.cpp.o.d"
  "/root/repo/tests/dns/query_log_test.cpp" "tests/CMakeFiles/dns_test.dir/dns/query_log_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns/query_log_test.cpp.o.d"
  "/root/repo/tests/dns/serialization_test.cpp" "tests/CMakeFiles/dns_test.dir/dns/serialization_test.cpp.o" "gcc" "tests/CMakeFiles/dns_test.dir/dns/serialization_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/seg_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/seg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
