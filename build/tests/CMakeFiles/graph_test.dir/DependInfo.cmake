
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/graph_io_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/graph_io_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/graph_io_test.cpp.o.d"
  "/root/repo/tests/graph/graph_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/graph_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/graph_test.cpp.o.d"
  "/root/repo/tests/graph/labeling_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/labeling_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/labeling_test.cpp.o.d"
  "/root/repo/tests/graph/prober_filter_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/prober_filter_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/prober_filter_test.cpp.o.d"
  "/root/repo/tests/graph/pruning_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/pruning_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/pruning_test.cpp.o.d"
  "/root/repo/tests/graph/streaming_build_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/streaming_build_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/streaming_build_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/seg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/seg_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/seg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
