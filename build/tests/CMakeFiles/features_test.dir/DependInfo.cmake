
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/features/extractor_test.cpp" "tests/CMakeFiles/features_test.dir/features/extractor_test.cpp.o" "gcc" "tests/CMakeFiles/features_test.dir/features/extractor_test.cpp.o.d"
  "/root/repo/tests/features/feature_config_test.cpp" "tests/CMakeFiles/features_test.dir/features/feature_config_test.cpp.o" "gcc" "tests/CMakeFiles/features_test.dir/features/feature_config_test.cpp.o.d"
  "/root/repo/tests/features/training_set_test.cpp" "tests/CMakeFiles/features_test.dir/features/training_set_test.cpp.o" "gcc" "tests/CMakeFiles/features_test.dir/features/training_set_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/features/CMakeFiles/seg_features.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/seg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/seg_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/seg_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/seg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
