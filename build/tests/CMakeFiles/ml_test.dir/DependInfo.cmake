
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/dataset_test.cpp" "tests/CMakeFiles/ml_test.dir/ml/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/ml_test.dir/ml/dataset_test.cpp.o.d"
  "/root/repo/tests/ml/decision_tree_test.cpp" "tests/CMakeFiles/ml_test.dir/ml/decision_tree_test.cpp.o" "gcc" "tests/CMakeFiles/ml_test.dir/ml/decision_tree_test.cpp.o.d"
  "/root/repo/tests/ml/logistic_regression_test.cpp" "tests/CMakeFiles/ml_test.dir/ml/logistic_regression_test.cpp.o" "gcc" "tests/CMakeFiles/ml_test.dir/ml/logistic_regression_test.cpp.o.d"
  "/root/repo/tests/ml/metrics_test.cpp" "tests/CMakeFiles/ml_test.dir/ml/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/ml_test.dir/ml/metrics_test.cpp.o.d"
  "/root/repo/tests/ml/pr_curve_test.cpp" "tests/CMakeFiles/ml_test.dir/ml/pr_curve_test.cpp.o" "gcc" "tests/CMakeFiles/ml_test.dir/ml/pr_curve_test.cpp.o.d"
  "/root/repo/tests/ml/random_forest_stratified_test.cpp" "tests/CMakeFiles/ml_test.dir/ml/random_forest_stratified_test.cpp.o" "gcc" "tests/CMakeFiles/ml_test.dir/ml/random_forest_stratified_test.cpp.o.d"
  "/root/repo/tests/ml/random_forest_test.cpp" "tests/CMakeFiles/ml_test.dir/ml/random_forest_test.cpp.o" "gcc" "tests/CMakeFiles/ml_test.dir/ml/random_forest_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/seg_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/seg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
