file(REMOVE_RECURSE
  "CMakeFiles/ml_test.dir/ml/dataset_test.cpp.o"
  "CMakeFiles/ml_test.dir/ml/dataset_test.cpp.o.d"
  "CMakeFiles/ml_test.dir/ml/decision_tree_test.cpp.o"
  "CMakeFiles/ml_test.dir/ml/decision_tree_test.cpp.o.d"
  "CMakeFiles/ml_test.dir/ml/logistic_regression_test.cpp.o"
  "CMakeFiles/ml_test.dir/ml/logistic_regression_test.cpp.o.d"
  "CMakeFiles/ml_test.dir/ml/metrics_test.cpp.o"
  "CMakeFiles/ml_test.dir/ml/metrics_test.cpp.o.d"
  "CMakeFiles/ml_test.dir/ml/pr_curve_test.cpp.o"
  "CMakeFiles/ml_test.dir/ml/pr_curve_test.cpp.o.d"
  "CMakeFiles/ml_test.dir/ml/random_forest_stratified_test.cpp.o"
  "CMakeFiles/ml_test.dir/ml/random_forest_stratified_test.cpp.o.d"
  "CMakeFiles/ml_test.dir/ml/random_forest_test.cpp.o"
  "CMakeFiles/ml_test.dir/ml/random_forest_test.cpp.o.d"
  "ml_test"
  "ml_test.pdb"
  "ml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
