// seg-lint: project-specific static checker for the Segugio determinism
// and race-freedom contracts. See docs/static-analysis.md.
//
// Usage:
//   seg_lint [--error-exit] [--rule R-XXX]... [--allow-timing SUBSTR]... PATH...
//
// PATH arguments are files or directories (directories are walked for
// .cpp/.h). Diagnostics print as `file:line: [RULE] message`. With
// --error-exit the process exits 1 when any finding is reported, which is
// how the ctest gate and the `lint` build target consume it.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "util/lint/linter.h"

namespace {

void print_usage() {
  std::fprintf(stderr,
               "usage: seg_lint [--error-exit] [--rule R-XXX]... "
               "[--allow-timing SUBSTR]... PATH...\n"
               "rules: R-DET1 R-DET2 R-RACE1 R-RACE2 R-API1 R-HDR1 R-HDR2\n"
               "mark deprecated entry points with // seg-deprecated above the "
               "declaration\n"
               "suppress one site: // seg-lint: allow(R-XXX)   (same or next line)\n"
               "suppress a file:   // seg-lint: allow-file(R-XXX)\n");
}

}  // namespace

int main(int argc, char** argv) {
  seg::lint::LintOptions options;
  std::vector<std::string> roots;
  bool error_exit = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--error-exit") {
      error_exit = true;
    } else if (arg == "--rule" && i + 1 < argc) {
      options.only_rules.emplace_back(argv[++i]);
    } else if (arg == "--allow-timing" && i + 1 < argc) {
      options.timing_allowlist.emplace_back(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "seg_lint: unknown option '%s'\n", arg.c_str());
      print_usage();
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    print_usage();
    return 2;
  }
  // Quoted includes in this project are rooted at src/; let every linted
  // root double as an include root so `seg_lint src tools bench` resolves
  // them no matter which subset is passed.
  options.include_roots = roots;

  const auto sources = seg::lint::collect_sources(roots);
  if (sources.empty()) {
    std::fprintf(stderr, "seg_lint: no .cpp/.h files under the given paths\n");
    return 2;
  }

  std::size_t total = 0;
  for (const auto& source : sources) {
    const auto findings = seg::lint::lint_file(source, options);
    for (const auto& finding : findings) {
      std::printf("%s:%zu: [%s] %s\n", finding.file.c_str(), finding.line,
                  finding.rule.c_str(), finding.message.c_str());
    }
    total += findings.size();
  }
  if (total != 0) {
    std::printf("seg_lint: %zu finding%s in %zu files scanned\n", total,
                total == 1 ? "" : "s", sources.size());
  }
  return error_exit && total != 0 ? 1 : 0;
}
