// seg-lint: project-specific static checker for the Segugio determinism,
// race-freedom, layering, and ODR contracts. See docs/static-analysis.md.
//
// Usage:
//   seg_lint [--error-exit] [--format text|json|sarif] [--rule R-XXX]...
//            [--layers FILE] [--baseline FILE] [--diff-base REV]
//            [--allow-timing SUBSTR]... PATH...
//
// PATH arguments are files or directories (directories are walked for
// .cpp/.h). v2 always runs in whole-program mode: every file is lexed once
// into the project model, per-file rules run with the cross-TU symbol
// index backing R-API1, and the include graph feeds R-ARCH2 (cycles) and
// R-ODR1. R-ARCH1 layering activates when --layers names a layers.toml.
//
// --baseline subtracts the checked-in known-findings set (line-free keys;
// see report.h). --diff-base REV lints the same roots inside a
// `git archive REV` scratch tree and subtracts those findings, so CI fails
// only on findings *introduced* by the change under test. With
// --error-exit the process exits 1 when any finding survives subtraction.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/lint/analysis_cache.h"
#include "util/lint/linter.h"
#include "util/lint/report.h"

namespace {

namespace fs = std::filesystem;

void print_usage() {
  std::fprintf(
      stderr,
      "usage: seg_lint [--error-exit] [--format text|json|sarif]\n"
      "                [--rule R-XXX]... [--layers FILE] [--baseline FILE]\n"
      "                [--diff-base REV] [--allow-timing SUBSTR]... PATH...\n"
      "rules: R-DET1 R-DET2 R-DET3 R-RACE1 R-RACE2 R-API1 R-HDR1 R-HDR2\n"
      "       R-ARCH1 R-ARCH2 R-ODR1 R-LIFE1 R-OBS1 R-MEM1 R-WIRE1 R-EXC1\n"
      "       R-SUP1\n"
      "mark deprecated entry points with // seg-deprecated above the "
      "declaration\n"
      "suppress one site: // seg-lint: allow(R-XXX)   (same or next line)\n"
      "suppress a file:   // seg-lint: allow-file(R-XXX)\n"
      "suppress a category: // seg-lint: allow(arch)  (covers R-ARCH1/2)\n");
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

std::string shell_quote(const std::string& text) {
  std::string quoted = "'";
  for (const char c : text) {
    if (c == '\'') {
      quoted += "'\\''";
    } else {
      quoted += c;
    }
  }
  quoted += "'";
  return quoted;
}

// First line of `command`'s stdout, or empty on failure.
std::string run_capture(const std::string& command) {
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    return {};
  }
  char buffer[4096];
  std::string line;
  if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    line = buffer;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
  }
  const int status = pclose(pipe);
  return status == 0 ? line : std::string{};
}

// Lints the same roots inside a `git archive <rev>` scratch checkout and
// returns the finding keys of everything that already existed there.
// Returns false (with a message on stderr) when the rev cannot be exported.
bool collect_diff_base_keys(const std::string& rev,
                            const std::vector<std::string>& roots,
                            const seg::lint::LintOptions& options,
                            seg::lint::AnalysisCache& cache,
                            std::vector<std::string>& keys) {
  const std::string repo_root = run_capture("git rev-parse --show-toplevel 2>/dev/null");
  if (repo_root.empty()) {
    std::fprintf(stderr, "seg_lint: --diff-base requires running inside a git repo\n");
    return false;
  }

  char tmpl[] = "/tmp/seg-lint-diff-XXXXXX";
  char* tmp = mkdtemp(tmpl);
  if (tmp == nullptr) {
    std::fprintf(stderr, "seg_lint: cannot create scratch directory\n");
    return false;
  }
  const std::string scratch = tmp;

  const std::string extract = "git -C " + shell_quote(repo_root) + " archive " +
                              shell_quote(rev) + " 2>/dev/null | tar -x -C " +
                              shell_quote(scratch);
  if (std::system(extract.c_str()) != 0) {
    std::fprintf(stderr, "seg_lint: git archive %s failed\n", rev.c_str());
    std::error_code ec;
    fs::remove_all(scratch, ec);
    return false;
  }

  // Map each lint root into the scratch tree: absolute roots are
  // re-anchored via their repo-relative suffix, relative roots reattach
  // directly. Roots absent at the base rev simply contribute nothing.
  std::vector<std::string> old_roots;
  for (const auto& root : roots) {
    std::error_code ec;
    fs::path rel = fs::path(root);
    if (rel.is_absolute()) {
      rel = fs::relative(rel, repo_root, ec);
      if (ec || rel.empty() || rel.native().rfind("..", 0) == 0) {
        rel = fs::path(seg::lint::normalize_path(root));
      }
    }
    const fs::path mapped = fs::path(scratch) / rel;
    if (fs::exists(mapped, ec)) {
      old_roots.push_back(mapped.string());
    }
  }

  seg::lint::LintOptions old_options = options;
  old_options.include_roots = old_roots;
  if (!options.layers_file.empty()) {
    // Prefer the base rev's own layering spec; a base that predates
    // layers.toml is linted without R-ARCH1 (every violation is "new").
    const fs::path old_layers =
        fs::path(scratch) / seg::lint::normalize_path(options.layers_file);
    std::error_code ec;
    old_options.layers_file =
        fs::is_regular_file(old_layers, ec) ? old_layers.string() : std::string{};
  }

  const auto old_sources = seg::lint::collect_sources(old_roots);
  const auto old_findings = seg::lint::lint_project(old_sources, old_options, &cache);
  for (const auto& finding : old_findings) {
    keys.push_back(seg::lint::finding_key(finding));
  }

  std::error_code ec;
  fs::remove_all(scratch, ec);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  seg::lint::LintOptions options;
  std::vector<std::string> roots;
  std::string format = "text";
  std::string baseline_path;
  std::string diff_base;
  bool error_exit = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--error-exit") {
      error_exit = true;
    } else if (arg == "--rule" && i + 1 < argc) {
      options.only_rules.emplace_back(argv[++i]);
    } else if (arg == "--allow-timing" && i + 1 < argc) {
      options.timing_allowlist.emplace_back(argv[++i]);
    } else if (arg == "--layers" && i + 1 < argc) {
      options.layers_file = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--diff-base" && i + 1 < argc) {
      diff_base = argv[++i];
    } else if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(std::strlen("--format="));
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "seg_lint: unknown option '%s'\n", arg.c_str());
      print_usage();
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    print_usage();
    return 2;
  }
  if (format != "text" && format != "json" && format != "sarif") {
    std::fprintf(stderr, "seg_lint: unknown format '%s'\n", format.c_str());
    return 2;
  }
  // Quoted includes in this project are rooted at src/; let every linted
  // root double as an include root so `seg_lint src tools bench` resolves
  // them no matter which subset is passed.
  options.include_roots = roots;

  const auto sources = seg::lint::collect_sources(roots);
  if (sources.empty()) {
    std::fprintf(stderr, "seg_lint: no .cpp/.h files under the given paths\n");
    return 2;
  }

  // One analysis cache spans the working-tree lint and the --diff-base
  // lint: files byte-identical between the two reuse their symbol-index
  // scan and per-file rule findings (analysis_cache.h).
  seg::lint::AnalysisCache cache;
  auto findings = seg::lint::lint_project(sources, options, &cache);
  if (!findings.empty() && findings.front().rule == "CONFIG") {
    std::fprintf(stderr, "seg_lint: %s: %s\n", findings.front().file.c_str(),
                 findings.front().message.c_str());
    return 2;
  }

  if (!baseline_path.empty()) {
    std::string baseline_text;
    if (!read_file(baseline_path, baseline_text)) {
      std::fprintf(stderr, "seg_lint: cannot read baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    try {
      findings = seg::lint::subtract_baseline(
          std::move(findings), seg::lint::load_baseline_keys(baseline_text));
    } catch (const std::exception& error) {
      std::fprintf(stderr, "seg_lint: %s: %s\n", baseline_path.c_str(), error.what());
      return 2;
    }
  }

  if (!diff_base.empty()) {
    std::vector<std::string> base_keys;
    if (!collect_diff_base_keys(diff_base, roots, options, cache, base_keys)) {
      return 2;
    }
    findings = seg::lint::subtract_baseline(std::move(findings), base_keys);
    const auto stats = cache.stats();
    std::fprintf(stderr,
                 "seg_lint: diff-base cache: %zu/%zu symbol scans reused, "
                 "%zu/%zu rule passes reused\n",
                 stats.symbol_hits, stats.symbol_hits + stats.symbol_misses,
                 stats.rule_hits, stats.rule_hits + stats.rule_misses);
  }

  if (format == "json") {
    seg::lint::write_json(std::cout, findings);
  } else if (format == "sarif") {
    seg::lint::write_sarif(std::cout, findings);
  } else {
    seg::lint::write_text(std::cout, findings);
    if (!findings.empty()) {
      std::printf("seg_lint: %zu finding%s in %zu files scanned\n", findings.size(),
                  findings.size() == 1 ? "" : "s", sources.size());
    }
  }
  return error_exit && !findings.empty() ? 1 : 0;
}
