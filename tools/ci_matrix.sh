#!/usr/bin/env bash
# CI sanitizer matrix: configure + build + ctest under {plain, thread,
# address, undefined} in separate build-<config>/ trees, with per-config
# logs. The thread leg is what validates the parallel pipeline's
# race-freedom contract; seg-lint runs inside every leg as a tier-1 test.
#
# Usage:
#   tools/ci_matrix.sh [config ...]   # default: plain thread address undefined lint-diff obs oocore ingest
#
# The lint-diff leg runs seg-lint v3 in whole-program diff mode against
# origin/main (falls back to HEAD outside a clone with that ref): CI fails
# only on findings *introduced* by the change under test, and a SARIF
# artifact lands in ${LOG_DIR}/seg-lint.sarif for code-scanning upload.
# The leg also checks the checker's own determinism contract — the SARIF
# document must be byte-identical at SEG_THREADS=1 and SEG_THREADS=8 — and
# archives the --diff-base analysis-cache hit statistics; both land under
# ${LOG_DIR}/lint-determinism/.
#
# The obs leg runs the two-day CLI example with --trace-out/--metrics-out/
# --run-report, validates the artifacts with `segugio validate-obs`, and
# archives them under ${LOG_DIR}/obs/ (load the trace in Perfetto when a
# perf regression needs triage; see docs/observability.md). It then streams
# a 4-day session with --journal at SEG_THREADS=1 and 8 (the journal and
# the classify output must be byte-identical, and journal-on must match
# journal-off), validates the journal, renders `segugio status --journal`,
# soaks the health sampler under tsan, and archives the obs-overhead
# benchmark section (SEG_BENCH_OBS_ONLY=1).
#
# The oocore leg reuses the asan tree and re-runs the pipeline, graph, and
# mmap-backing suites with SEG_GRAPH_BACKING=mmap, so the zero-copy
# GraphView path (mapping lifetime, varint decode bounds, classify parity)
# gets sanitizer coverage; see docs/graph-format.md.
#
# The ingest leg covers the streaming front end (docs/ingestion.md): a
# tsan soak of the queue and stream-determinism suites (repeated, so the
# producer/consumer interleavings actually vary), the malformed-wire
# corpus under asan (where "never UB" is checked, not assumed), and the
# replay benchmark (SEG_BENCH_INGEST_ONLY=1), whose BENCH_pipeline.json
# "ingest" section is archived under ${LOG_DIR}/ingest/.
#
# Environment:
#   SEG_CI_JOBS     parallel build/test jobs (default: nproc)
#   SEG_CI_LOG_DIR  where per-config logs land (default: build-logs/)
#
# Exit status is non-zero if any requested config fails; the summary at the
# end lists each config's result either way.
set -u

cd "$(dirname "$0")/.."

CONFIGS=("$@")
if [ ${#CONFIGS[@]} -eq 0 ]; then
  CONFIGS=(plain thread address undefined lint-diff obs oocore ingest)
fi

JOBS="${SEG_CI_JOBS:-$(nproc 2>/dev/null || echo 2)}"
LOG_DIR="${SEG_CI_LOG_DIR:-build-logs}"
mkdir -p "${LOG_DIR}"

declare -A RESULTS
FAILED=0

run_lint_diff() {
  local log="${LOG_DIR}/lint-diff.log"
  local build_dir="build-plain"
  : > "${log}"
  mkdir -p "${LOG_DIR}/lint-determinism"

  echo "=== [lint-diff] build seg_lint (${build_dir}) ==="
  if ! cmake -B "${build_dir}" -S . >> "${log}" 2>&1 ||
     ! cmake --build "${build_dir}" -j "${JOBS}" --target seg_lint >> "${log}" 2>&1; then
    echo "    seg_lint build FAILED (see ${log})"
    return 1
  fi
  local seg_lint="${build_dir}/tools/seg_lint"

  local base="origin/main"
  if ! git rev-parse --verify --quiet "${base}" > /dev/null; then
    base="HEAD"
  fi

  echo "=== [lint-diff] seg_lint --diff-base ${base} (json gate + sarif artifact) ==="
  "${seg_lint}" --format=sarif --layers tools/layers.toml \
    src tools bench tests examples > "${LOG_DIR}/seg-lint.sarif" 2>> "${log}"
  if ! "${seg_lint}" --error-exit --format=json --diff-base "${base}" \
       --layers tools/layers.toml --baseline tools/lint-baseline.json \
       src tools bench tests examples > "${LOG_DIR}/seg-lint-diff.json" \
       2> "${LOG_DIR}/lint-determinism/cache-stats.txt"; then
    echo "    new lint findings vs ${base} (see ${LOG_DIR}/seg-lint-diff.json)"
    cat "${LOG_DIR}/seg-lint-diff.json" >> "${log}"
    return 1
  fi
  cat "${LOG_DIR}/lint-determinism/cache-stats.txt" >> "${log}"

  echo "=== [lint-diff] SARIF determinism: SEG_THREADS=1 vs SEG_THREADS=8 ==="
  local det_dir="${LOG_DIR}/lint-determinism"
  SEG_THREADS=1 "${seg_lint}" --format=sarif --layers tools/layers.toml \
    src tools bench tests examples > "${det_dir}/seg-lint-serial.sarif" 2>> "${log}"
  SEG_THREADS=8 "${seg_lint}" --format=sarif --layers tools/layers.toml \
    src tools bench tests examples > "${det_dir}/seg-lint-parallel.sarif" 2>> "${log}"
  if ! cmp "${det_dir}/seg-lint-serial.sarif" "${det_dir}/seg-lint-parallel.sarif" \
       >> "${log}" 2>&1; then
    echo "    SARIF output differs between 1 and 8 threads (see ${det_dir}/)"
    return 1
  fi
  echo "    byte-identical at 1 and 8 threads; artifacts in ${det_dir}/"
  return 0
}

run_obs() {
  local log="${LOG_DIR}/obs.log"
  local build_dir="build-plain"
  local obs_dir="${LOG_DIR}/obs"
  : > "${log}"
  mkdir -p "${obs_dir}"

  echo "=== [obs] build segugio (${build_dir}) ==="
  if ! cmake -B "${build_dir}" -S . >> "${log}" 2>&1 ||
     ! cmake --build "${build_dir}" -j "${JOBS}" --target segugio >> "${log}" 2>&1; then
    echo "    segugio build FAILED (see ${log})"
    return 1
  fi
  local cli="${build_dir}/tools/segugio"

  local data_dir
  data_dir="$(mktemp -d)"
  # shellcheck disable=SC2064
  trap "rm -rf '${data_dir}'" RETURN

  echo "=== [obs] two-day example with trace/metrics/run-report ==="
  if ! "${cli}" simgen --out "${data_dir}" --days 2 --isp 0 --format binlog >> "${log}" 2>&1; then
    echo "    simgen FAILED (see ${log})"
    return 1
  fi
  if ! "${cli}" train --input "${data_dir}/day0.bin" \
       --blacklist "${data_dir}/blacklist-day0.txt" \
       --whitelist "${data_dir}/whitelist.txt" \
       --activity "${data_dir}/activity.txt" --pdns "${data_dir}/pdns.txt" \
       --model "${data_dir}/model.txt" --trees 20 \
       --trace-out "${obs_dir}/train-trace.json" \
       --metrics-out "${obs_dir}/train-metrics.prom" \
       --run-report "${obs_dir}/train-report.json" >> "${log}" 2>&1; then
    echo "    train FAILED (see ${log})"
    return 1
  fi
  if ! "${cli}" classify --input "${data_dir}/day1.bin" \
       --model "${data_dir}/model.txt" \
       --blacklist "${data_dir}/blacklist-day1.txt" \
       --whitelist "${data_dir}/whitelist.txt" \
       --activity "${data_dir}/activity.txt" --pdns "${data_dir}/pdns.txt" \
       --threshold 0.5 \
       --trace-out "${obs_dir}/classify-trace.json" \
       --metrics-out "${obs_dir}/classify-metrics.prom" \
       --run-report "${obs_dir}/classify-report.json" >> "${log}" 2>&1; then
    echo "    classify FAILED (see ${log})"
    return 1
  fi

  echo "=== [obs] validate-obs over the archived artifacts ==="
  local leg
  for leg in train classify; do
    if ! "${cli}" validate-obs --trace "${obs_dir}/${leg}-trace.json" \
         --run-report "${obs_dir}/${leg}-report.json" \
         --metrics "${obs_dir}/${leg}-metrics.prom" >> "${log}" 2>&1; then
      echo "    validate-obs FAILED for ${leg} (see ${log})"
      return 1
    fi
  done

  echo "=== [obs] multi-day journal: 4-day streamed session, 1 vs 8 threads ==="
  local jdata_dir
  jdata_dir="$(mktemp -d)"
  # shellcheck disable=SC2064
  trap "rm -rf '${data_dir}' '${jdata_dir}'" RETURN
  if ! "${cli}" simgen --out "${jdata_dir}" --days 4 --isp 0 --format binlog \
       >> "${log}" 2>&1; then
    echo "    simgen (journal leg) FAILED (see ${log})"
    return 1
  fi
  cat "${jdata_dir}"/day0.bin "${jdata_dir}"/day1.bin \
      "${jdata_dir}"/day2.bin "${jdata_dir}"/day3.bin > "${jdata_dir}/stream.bin"
  if ! "${cli}" train --input "${jdata_dir}/day0.bin" \
       --blacklist "${jdata_dir}/blacklist-day0.txt" \
       --whitelist "${jdata_dir}/whitelist.txt" \
       --activity "${jdata_dir}/activity.txt" --pdns "${jdata_dir}/pdns.txt" \
       --model "${jdata_dir}/model.txt" --trees 20 >> "${log}" 2>&1; then
    echo "    train (journal leg) FAILED (see ${log})"
    return 1
  fi
  # The journal (and the health sampler riding along) must be deterministic
  # across thread counts and invisible in the classify output.
  local journal_classify=(classify --input "${jdata_dir}/stream.bin"
    --model "${jdata_dir}/model.txt"
    --blacklist "${jdata_dir}/blacklist-day3.txt"
    --whitelist "${jdata_dir}/whitelist.txt"
    --activity "${jdata_dir}/activity.txt" --pdns "${jdata_dir}/pdns.txt"
    --threshold 0.5)
  if ! SEG_THREADS=1 "${cli}" "${journal_classify[@]}" \
       --journal "${obs_dir}/journal-serial.jsonl" \
       --metrics-out "${obs_dir}/stream-metrics.prom" --health-interval 50 \
       > "${obs_dir}/stream-scores-serial.txt" 2>> "${log}"; then
    echo "    journaled classify (1 thread) FAILED (see ${log})"
    return 1
  fi
  if ! SEG_THREADS=8 "${cli}" "${journal_classify[@]}" \
       --journal "${obs_dir}/journal-parallel.jsonl" --health-interval 50 \
       > "${obs_dir}/stream-scores-parallel.txt" 2>> "${log}"; then
    echo "    journaled classify (8 threads) FAILED (see ${log})"
    return 1
  fi
  if ! cmp "${obs_dir}/journal-serial.jsonl" "${obs_dir}/journal-parallel.jsonl" \
       >> "${log}" 2>&1; then
    echo "    journal differs between 1 and 8 threads (see ${obs_dir}/)"
    return 1
  fi
  if ! cmp "${obs_dir}/stream-scores-serial.txt" "${obs_dir}/stream-scores-parallel.txt" \
       >> "${log}" 2>&1; then
    echo "    classify output differs between 1 and 8 threads (see ${obs_dir}/)"
    return 1
  fi
  if ! "${cli}" "${journal_classify[@]}" > "${obs_dir}/stream-scores-plain.txt" \
       2>> "${log}"; then
    echo "    journal-off classify FAILED (see ${log})"
    return 1
  fi
  if ! cmp "${obs_dir}/stream-scores-plain.txt" "${obs_dir}/stream-scores-serial.txt" \
       >> "${log}" 2>&1; then
    echo "    journal-on classify output differs from journal-off (see ${obs_dir}/)"
    return 1
  fi
  if ! "${cli}" validate-obs --journal "${obs_dir}/journal-serial.jsonl" \
       --metrics "${obs_dir}/stream-metrics.prom" >> "${log}" 2>&1; then
    echo "    validate-obs --journal FAILED (see ${log})"
    return 1
  fi
  if ! "${cli}" status --journal "${obs_dir}/journal-serial.jsonl" \
       > "${obs_dir}/status.txt" 2>> "${log}"; then
    echo "    status --journal FAILED (see ${log})"
    return 1
  fi
  if ! grep -q "day" "${obs_dir}/status.txt"; then
    echo "    status --journal printed no day table (see ${obs_dir}/status.txt)"
    return 1
  fi
  echo "    journal byte-identical at 1 and 8 threads; classify output unperturbed"

  echo "=== [obs] health sampler under tsan ==="
  if ! cmake -B build-tsan -S . -DSEG_SANITIZE=thread >> "${log}" 2>&1 ||
     ! cmake --build build-tsan -j "${JOBS}" --target util_test >> "${log}" 2>&1; then
    echo "    tsan build FAILED (see ${log})"
    return 1
  fi
  if ! build-tsan/tests/util_test --gtest_filter='Health*' --gtest_repeat=5 \
       >> "${log}" 2>&1; then
    echo "    health sampler FAILED under tsan (see ${log})"
    return 1
  fi

  echo "=== [obs] overhead benchmark (SEG_BENCH_OBS_ONLY=1) ==="
  if ! cmake --build "${build_dir}" -j "${JOBS}" --target bench_perf_efficiency \
       >> "${log}" 2>&1; then
    echo "    bench build FAILED (see ${log})"
    return 1
  fi
  # The bench exits non-zero when the obs-on session perturbs scores or
  # writes an invalid journal — the acceptance gate on real bench data.
  if ! (cd "${build_dir}" && SEG_BENCH_OBS_ONLY=1 ./bench/bench_perf_efficiency) \
       >> "${log}" 2>&1; then
    echo "    obs overhead benchmark FAILED (see ${log})"
    return 1
  fi
  cp "${build_dir}/BENCH_pipeline.json" "${obs_dir}/BENCH_pipeline.json"
  echo "    artifacts archived in ${obs_dir}/"
  return 0
}

run_oocore() {
  local log="${LOG_DIR}/oocore.log"
  local build_dir="build-asan"
  : > "${log}"

  echo "=== [oocore] build core/graph tests (${build_dir}, SEG_SANITIZE='address') ==="
  if ! cmake -B "${build_dir}" -S . -DSEG_SANITIZE=address >> "${log}" 2>&1 ||
     ! cmake --build "${build_dir}" -j "${JOBS}" --target core_test graph_test \
         >> "${log}" 2>&1; then
    echo "    build FAILED (see ${log})"
    return 1
  fi

  echo "=== [oocore] pipeline + mmap-backing + graph suites with SEG_GRAPH_BACKING=mmap ==="
  if ! SEG_GRAPH_BACKING=mmap "${build_dir}/tests/core_test" \
       --gtest_filter='Pipeline*:MmapBacking*' >> "${log}" 2>&1; then
    echo "    core suites FAILED under mmap backing (see ${log})"
    return 1
  fi
  if ! SEG_GRAPH_BACKING=mmap "${build_dir}/tests/graph_test" \
       --gtest_filter='GraphCompressed*:OutOfCore*:Varint*' >> "${log}" 2>&1; then
    echo "    graph suites FAILED under mmap backing (see ${log})"
    return 1
  fi
  return 0
}

run_ingest() {
  local log="${LOG_DIR}/ingest.log"
  local ingest_dir="${LOG_DIR}/ingest"
  : > "${log}"
  mkdir -p "${ingest_dir}"

  echo "=== [ingest] build tsan + asan test trees ==="
  if ! cmake -B build-tsan -S . -DSEG_SANITIZE=thread >> "${log}" 2>&1 ||
     ! cmake --build build-tsan -j "${JOBS}" --target util_test core_test >> "${log}" 2>&1; then
    echo "    tsan build FAILED (see ${log})"
    return 1
  fi
  if ! cmake -B build-asan -S . -DSEG_SANITIZE=address >> "${log}" 2>&1 ||
     ! cmake --build build-asan -j "${JOBS}" --target dns_test >> "${log}" 2>&1; then
    echo "    asan build FAILED (see ${log})"
    return 1
  fi

  echo "=== [ingest] tsan soak: queue stress + stream determinism (x5) ==="
  if ! build-tsan/tests/util_test --gtest_filter='IngestQueue*' \
       --gtest_repeat=5 >> "${log}" 2>&1; then
    echo "    ingest queue soak FAILED under tsan (see ${log})"
    return 1
  fi
  if ! build-tsan/tests/core_test --gtest_filter='PipelineStream*' \
       --gtest_repeat=5 >> "${log}" 2>&1; then
    echo "    pipeline stream soak FAILED under tsan (see ${log})"
    return 1
  fi

  echo "=== [ingest] asan: malformed wire corpus ==="
  if ! build-asan/tests/dns_test --gtest_filter='WireTest*' >> "${log}" 2>&1; then
    echo "    wire corpus FAILED under asan (see ${log})"
    return 1
  fi

  echo "=== [ingest] replay benchmark (SEG_BENCH_INGEST_ONLY=1) ==="
  if ! cmake -B build-plain -S . >> "${log}" 2>&1 ||
     ! cmake --build build-plain -j "${JOBS}" --target bench_perf_efficiency \
         >> "${log}" 2>&1; then
    echo "    bench build FAILED (see ${log})"
    return 1
  fi
  # The bench writes BENCH_pipeline.json into its cwd and exits non-zero
  # if the blocking queue ever dropped a batch.
  if ! (cd build-plain && SEG_BENCH_INGEST_ONLY=1 ./bench/bench_perf_efficiency) \
       >> "${log}" 2>&1; then
    echo "    ingest benchmark FAILED (see ${log})"
    return 1
  fi
  cp build-plain/BENCH_pipeline.json "${ingest_dir}/BENCH_pipeline.json"
  echo "    bench section archived in ${ingest_dir}/BENCH_pipeline.json"
  return 0
}

run_config() {
  local config="$1"
  local build_dir log sanitize
  case "${config}" in
    plain)     build_dir="build-plain";     sanitize="" ;;
    thread)    build_dir="build-tsan";      sanitize="thread" ;;
    address)   build_dir="build-asan";      sanitize="address" ;;
    undefined) build_dir="build-ubsan";     sanitize="undefined" ;;
    lint-diff) run_lint_diff; return $? ;;
    obs)       run_obs; return $? ;;
    oocore)    run_oocore; return $? ;;
    ingest)    run_ingest; return $? ;;
    *)
      echo "ci_matrix: unknown config '${config}' (plain|thread|address|undefined|lint-diff|obs|oocore|ingest)" >&2
      return 2
      ;;
  esac
  log="${LOG_DIR}/${config}.log"
  : > "${log}"

  echo "=== [${config}] configure (${build_dir}, SEG_SANITIZE='${sanitize}') ==="
  if ! cmake -B "${build_dir}" -S . -DSEG_SANITIZE="${sanitize}" >> "${log}" 2>&1; then
    echo "    configure FAILED (see ${log})"
    return 1
  fi
  echo "=== [${config}] build ==="
  if ! cmake --build "${build_dir}" -j "${JOBS}" >> "${log}" 2>&1; then
    echo "    build FAILED (see ${log})"
    return 1
  fi
  echo "=== [${config}] ctest ==="
  if ! ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}" >> "${log}" 2>&1; then
    echo "    tests FAILED (see ${log})"
    return 1
  fi
  if [ "${config}" = "thread" ]; then
    # The streaming pipeline and sharded stores parallelize internally
    # (query_batch, sharded build, parallel classify); run their suites
    # explicitly under tsan so a filtered ctest invocation can't skip the
    # race-contract coverage.
    echo "=== [${config}] streaming pipeline + sharded store suites ==="
    if ! "${build_dir}/tests/core_test" --gtest_filter='Pipeline*' >> "${log}" 2>&1; then
      echo "    pipeline tests FAILED under tsan (see ${log})"
      return 1
    fi
    if ! "${build_dir}/tests/dns_test" --gtest_filter='Sharded*' >> "${log}" 2>&1; then
      echo "    sharded store tests FAILED under tsan (see ${log})"
      return 1
    fi
  fi
  return 0
}

# Every leg archives whatever BENCH_pipeline.json its build trees hold, so
# the machine-readable perf trajectory survives the run no matter which leg
# produced it (ingest/obs write fresh numbers; other legs re-archive the
# tree's last run).
archive_bench_json() {
  local config="$1" d
  for d in build-plain build-tsan build-asan build-ubsan; do
    if [ -f "${d}/BENCH_pipeline.json" ]; then
      mkdir -p "${LOG_DIR}/${config}"
      cp "${d}/BENCH_pipeline.json" \
         "${LOG_DIR}/${config}/BENCH_pipeline-${d#build-}.json"
    fi
  done
}

for config in "${CONFIGS[@]}"; do
  if run_config "${config}"; then
    RESULTS[${config}]="ok"
  else
    RESULTS[${config}]="FAILED"
    FAILED=1
  fi
  archive_bench_json "${config}"
done

echo
echo "=== ci_matrix summary ==="
for config in "${CONFIGS[@]}"; do
  printf '  %-10s %s  (log: %s/%s.log)\n' "${config}" "${RESULTS[${config}]}" \
    "${LOG_DIR}" "${config}"
done
exit "${FAILED}"
