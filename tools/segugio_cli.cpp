// segugio — command-line interface to the detector.
//
// Subcommands:
//
//   segugio simgen --out DIR [--days N] [--isp K] [--seed S] [--scale small|bench]
//                  [--format sim|binlog|dnstap|pcap]
//       Generates N days of synthetic ISP traffic plus the supporting
//       files: per-day query logs (in the requested trace format) and
//       blacklist snapshots, the e2LD whitelist, the domain-activity
//       index, and the passive-DNS store.
//
//   segugio train --input FILE [--format sim|binlog|dnstap|pcap]
//                 --blacklist FILE --whitelist FILE
//                 --activity FILE --pdns FILE --model OUT
//                 [--trees N] [--no-prober-filter]
//       Builds + labels + prunes the behavior graph for one day of traffic
//       and trains the classifier; writes the portable model file.
//
//   segugio classify --input FILE [--format ...] --model FILE
//                    --blacklist FILE --whitelist FILE --activity FILE
//                    --pdns FILE [--threshold X] [--top N] [--machines]
//       Streams the input through the pipeline and scores every unknown
//       domain of the final day, printing detections (with the querying
//       machines when --machines is given). Multi-day inputs warm the
//       session day by day before the final day is scored.
//
//   segugio report ...same inputs as classify... [--threshold X] [--top N]
//       Prints the remediation worklist: machines implicated by known or
//       newly detected malware-control domains (Section VI).
//
// The trace format is sniffed from the file's magic bytes unless --format
// forces it (see docs/ingestion.md). `--trace FILE` on train/classify/
// report and `--binary` on simgen survive as deprecated aliases of
// `--input FILE` and `--format binlog`; each warns once per run.
//
//   segugio inspect --model FILE
//       Prints the model card: classifier, windows, pruning, importances.
//
//   segugio validate-obs [--trace FILE] [--run-report FILE] [--metrics FILE]
//                        [--journal FILE]
//       Validates obs exporter output: the JSONs parse, trace spans are
//       well-nested, the run report carries every required section, the
//       obs journal passes its byte-level validator. Used by the
//       ci_matrix `obs` leg.
//
//   segugio status --journal FILE [--last N]
//       Renders a per-day obs journal as a human-readable health table:
//       records, unknown domains, score mean, drift gauges (PSI/KS),
//       calibrated threshold, and tripped alerts per day.
//
// Observability (train/classify/report): --trace-out FILE writes a Chrome
// trace_event JSON of the run, --metrics-out FILE the Prometheus text
// exposition, --run-report FILE the structured RunReport JSON (see
// docs/observability.md). Tracing is enabled automatically when --trace-out
// or --run-report is given; scores are bit-identical either way.
// classify/report additionally take --journal FILE (write one `segf1
// obsjournal 1` entry per streamed day, with each day classified as it
// completes so score/drift gauges land in its entry) and
// --health-interval MS (run the live health sampler during the session;
// its seg_health_* gauges land in --metrics-out).
//
// All file formats are the plain-text formats of the library (see
// dns/query_log.h, dns/activity_index.h, dns/pdns.h, core/segugio.h).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "core/diagnostics.h"
#include "core/infection_report.h"
#include "core/pipeline.h"
#include "core/segugio.h"
#include "dns/trace_source.h"
#include "dns/wire/dnstap.h"
#include "dns/wire/pcap.h"
#include "graph/labeling.h"
#include "sim/world.h"
#include "util/args.h"
#include "util/obs/obs.h"
#include "util/require.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace seg;

graph::NameSet load_name_set(const std::string& path) {
  std::ifstream in(path);
  util::require_data(in.is_open(), "cannot open '" + path + "'");
  graph::NameSet set;
  std::string line;
  while (std::getline(in, line)) {
    const auto trimmed = util::trim(line);
    if (!trimmed.empty() && trimmed.front() != '#') {
      set.insert(trimmed);
    }
  }
  return set;
}

void save_name_set(const graph::NameSet& set, const std::string& path) {
  std::ofstream out(path);
  util::require_data(out.is_open(), "cannot create '" + path + "'");
  for (const auto& name : set) {
    out << name << '\n';
  }
}

dns::DomainActivityIndex load_activity(const std::string& path) {
  std::ifstream in(path);
  util::require_data(in.is_open(), "cannot open '" + path + "'");
  return dns::DomainActivityIndex::load(in);
}

// Resolves the input trace path for train/classify/report. `--trace` is
// the pre-streaming spelling, kept as a deprecated alias of `--input`.
std::string input_path(const util::Args& args) {
  if (args.has("input")) {
    return args.get("input");
  }
  util::require_data(args.has("trace"),
                     "pass --input FILE (optionally --format sim|binlog|dnstap|pcap)");
  std::fprintf(stderr,
               "segugio: --trace is deprecated; use --input FILE [--format ...]\n");
  return args.get("trace");
}

dns::TraceFormat input_format(const util::Args& args, const std::string& path) {
  return args.has("format") ? dns::parse_format(args.get("format"))
                            : dns::detect_format(path);
}

// Reads a whole (single-day) input into memory — the one-shot train path.
dns::DayTrace load_input(const util::Args& args) {
  const auto path = input_path(args);
  dns::FileTraceSource source(path, input_format(args, path));
  dns::DayTrace trace;
  std::size_t days = 0;
  dns::collect_days(source, [&](dns::DayTrace&& day) {
    trace = std::move(day);
    ++days;
  });
  util::require_data(days <= 1, "'" + path + "' spans " + std::to_string(days) +
                                    " days; train expects a single-day trace");
  return trace;
}

dns::PassiveDnsDb load_pdns(const std::string& path) {
  std::ifstream in(path);
  util::require_data(in.is_open(), "cannot open '" + path + "'");
  return dns::PassiveDnsDb::load(in);
}

int cmd_simgen(const util::Args& args) {
  const auto out_dir = args.get("out");
  const auto days = args.get_int_or("days", 2);
  const auto isp = static_cast<std::size_t>(args.get_int_or("isp", 0));
  const auto scale = args.get_or("scale", "small");

  auto scenario = scale == "bench" ? sim::ScenarioConfig::bench() : sim::ScenarioConfig::small();
  scenario.seed = static_cast<std::uint64_t>(args.get_int_or("seed", scenario.seed));
  sim::World world{scenario};
  util::require_data(isp < world.isp_count(), "simgen: --isp out of range");

  auto format = dns::TraceFormat::kSim;
  if (args.has("format")) {
    format = dns::parse_format(args.get("format"));
  } else if (args.flag("binary")) {
    std::fprintf(stderr, "segugio: --binary is deprecated; use --format binlog\n");
    format = dns::TraceFormat::kBinlog;
  }
  const char* extension = ".tsv";
  switch (format) {
    case dns::TraceFormat::kSim:
      break;
    case dns::TraceFormat::kBinlog:
      extension = ".bin";
      break;
    case dns::TraceFormat::kDnstap:
      extension = ".dnstap";
      break;
    case dns::TraceFormat::kPcap:
      extension = ".pcap";
      break;
  }
  for (dns::Day day = 0; day < days; ++day) {
    const auto trace = world.generate_day(isp, day);
    const auto trace_path = out_dir + "/day" + std::to_string(day) + extension;
    switch (format) {
      case dns::TraceFormat::kSim:
        dns::write_trace(trace, trace_path);
        break;
      case dns::TraceFormat::kBinlog:
        dns::write_trace_binary(trace, trace_path);
        break;
      case dns::TraceFormat::kDnstap:
        dns::wire::write_dnstap_trace(trace, trace_path);
        break;
      case dns::TraceFormat::kPcap:
        dns::wire::write_pcap_trace(trace, trace_path);
        break;
    }
    save_name_set(world.blacklist().as_of(sim::BlacklistKind::kCommercial, day),
                  out_dir + "/blacklist-day" + std::to_string(day) + ".txt");
    std::printf("wrote %s (%zu records)\n", trace_path.c_str(), trace.records.size());
  }
  save_name_set(world.whitelist().all(), out_dir + "/whitelist.txt");
  {
    std::ofstream out(out_dir + "/activity.txt");
    util::require_data(out.is_open(), "cannot create activity file");
    world.activity().save(out);
  }
  {
    std::ofstream out(out_dir + "/pdns.txt");
    util::require_data(out.is_open(), "cannot create pdns file");
    world.pdns().save(out);
  }
  std::printf("wrote %s/{whitelist.txt,activity.txt,pdns.txt}\n", out_dir.c_str());
  return 0;
}

int cmd_train(const util::Args& args) {
  const auto trace = load_input(args);
  const auto blacklist = load_name_set(args.get("blacklist"));
  const auto whitelist = load_name_set(args.get("whitelist"));
  const auto activity = load_activity(args.get("activity"));
  const auto pdns = load_pdns(args.get("pdns"));
  const auto psl = dns::PublicSuffixList::with_default_rules();

  core::SegugioConfig config;
  config.forest.num_trees = static_cast<std::size_t>(args.get_int_or("trees", 100));
  if (!args.flag("no-prober-filter")) {
    config.prober_filter = graph::ProberFilterConfig{};
  }

  obs::Span train_span("cli/train");
  const auto prep = core::Segugio::prepare_graph(trace, psl, blacklist, whitelist,
                                                 config.prepare_options());
  const auto& graph = prep.graph;
  core::Segugio segugio(config);
  segugio.train(graph, activity, pdns);

  const auto model_path = args.get("model");
  std::ofstream out(model_path);
  util::require_data(out.is_open(), "cannot create '" + model_path + "'");
  segugio.save(out);
  std::printf("trained on %zu records: %zu machines, %zu domains (%zu malware, %zu benign)\n",
              trace.records.size(), graph.machine_count(), graph.domain_count(),
              graph.count_domains_with(graph::Label::kMalware),
              graph.count_domains_with(graph::Label::kBenign));
  std::printf("model written to %s (%.2fs)\n", model_path.c_str(), train_span.close());
  return 0;
}

// Shared by classify/report: load everything and score the day through a
// streaming Pipeline session seeded with the saved model.
struct DayRun {
  graph::MachineDomainGraph graph;
  core::DetectionReport report;
};

DayRun run_day(const util::Args& args) {
  const auto path = input_path(args);
  const auto blacklist = load_name_set(args.get("blacklist"));
  const auto whitelist = load_name_set(args.get("whitelist"));
  const auto activity = load_activity(args.get("activity"));
  const auto pdns = load_pdns(args.get("pdns"));
  const auto psl = dns::PublicSuffixList::with_default_rules();
  std::ifstream model_in(args.get("model"));
  util::require_data(model_in.is_open(), "cannot open model file");
  auto segugio = core::Segugio::load(model_in);

  core::Pipeline pipeline(psl, activity, pdns, segugio.config());
  pipeline.detector() = std::move(segugio);

  // Optional longitudinal obs: a per-day journal and/or the live health
  // sampler. Neither can perturb the scores (obs contract).
  std::ofstream journal_out;
  const bool journaling = args.has("journal");
  if (journaling) {
    const auto journal_path = args.get("journal");
    journal_out.open(journal_path);
    util::require_data(journal_out.is_open(), "cannot create '" + journal_path + "'");
    pipeline.set_journal(&journal_out);
  }
  std::optional<obs::HealthSampler> health;
  if (const int health_ms = args.get_int_or("health-interval", 0); health_ms > 0) {
    obs::HealthOptions health_options;
    health_options.interval = std::chrono::milliseconds(health_ms);
    health.emplace(health_options);
    health->start();
  }

  dns::FileTraceSource source(path, input_format(args, path));
  core::PreparedDay last;
  core::DetectionReport journaled_report;
  std::size_t days = 0;
  pipeline.ingest_stream(
      source, [&blacklist](dns::Day) -> const graph::NameSet& { return blacklist; },
      whitelist,
      [&](core::PreparedDay&& day) {
        if (journaling) {
          // Classify every streamed day while its journal entry is still
          // pending, so each day's entry carries score/drift gauges; the
          // last day's report doubles as the command output (classify()
          // is pure per day, so the scores match the non-journal path).
          journaled_report = pipeline.classify(day);
        }
        last = std::move(day);
        ++days;
      });
  util::require_data(days > 0, "'" + path + "' holds no records to classify");
  if (health) {
    health->sample_once();  // final snapshot for --metrics-out
    health->stop();
  }
  auto report = journaling ? std::move(journaled_report) : pipeline.classify(last);
  pipeline.flush_journal();
  return {std::move(last.graph), std::move(report)};
}

int cmd_classify(const util::Args& args) {
  const double threshold = args.get_double_or("threshold", 0.5);
  const auto top = static_cast<std::size_t>(args.get_int_or("top", 25));
  const bool show_machines = args.flag("machines");

  const auto run = run_day(args);
  // The report carries its own machine attribution; no graph needed here.
  const auto detections = run.report.detections_at(threshold);

  std::printf("# %zu unknown domains scored; %zu at or above threshold %.2f\n",
              run.report.scores.size(), detections.size(), threshold);
  std::printf("# score\tdomain\tmachines%s\n", show_machines ? "\tquerying_machines" : "");
  std::size_t shown = 0;
  for (const auto& detection : detections) {
    if (shown++ >= top) {
      break;
    }
    std::printf("%.4f\t%s\t%zu", detection.domain.score, detection.domain.name.c_str(),
                detection.machines.size());
    if (show_machines) {
      std::printf("\t");
      for (std::size_t i = 0; i < detection.machines.size(); ++i) {
        std::printf("%s%s", i == 0 ? "" : ",", detection.machines[i].c_str());
      }
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_report(const util::Args& args) {
  const double threshold = args.get_double_or("threshold", 0.5);
  const auto top = static_cast<std::size_t>(args.get_int_or("top", 50));
  const auto run = run_day(args);
  const auto report = core::enumerate_infections(run.graph, run.report, threshold);
  std::printf("# remediation worklist: %zu machines (%zu implicated only by new "
              "detections)\n",
              report.machines.size(), report.newly_implicated);
  std::printf("# machine\tevidence\tknown_domains\tdetected_domains\n");
  std::size_t shown = 0;
  for (const auto& machine : report.machines) {
    if (shown++ >= top) {
      break;
    }
    std::printf("%s\t%zu\t%zu\t%zu\n", machine.name.c_str(), machine.evidence(),
                machine.known_domains.size(), machine.detected_domains.size());
  }
  return 0;
}

int cmd_inspect(const util::Args& args) {
  std::ifstream model_in(args.get("model"));
  util::require_data(model_in.is_open(), "cannot open model file");
  const auto segugio = core::Segugio::load(model_in);
  std::printf("%s", core::describe_model(segugio).c_str());
  return 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  util::require_data(in.is_open(), "cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Minimal Prometheus text-exposition check: every line is a `# TYPE` /
// `# HELP` comment or a `name[{labels}] value` sample.
std::string validate_prometheus_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line.front() == '#') {
      continue;
    }
    const auto space = line.rfind(' ');
    if (space == std::string::npos || space == 0 || space + 1 >= line.size()) {
      return "line " + std::to_string(line_no) + " is not a 'name value' sample";
    }
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    if (end != value.c_str() + value.size() && value != "+Inf" && value != "-Inf" &&
        value != "NaN") {
      return "line " + std::to_string(line_no) + " has a malformed value '" + value + "'";
    }
  }
  return {};
}

// One row per journaled day: counters, score summary, drift, alerts.
int cmd_status(const util::Args& args) {
  const auto path = args.get("journal");
  const std::string text = read_file(path);
  if (const auto problem = obs::validate_obs_journal(text); !problem.empty()) {
    std::fprintf(stderr, "status: %s: %s\n", path.c_str(), problem.c_str());
    return 1;
  }
  std::istringstream in(text);
  const auto entries = obs::read_journal(in);

  const auto format_double = [](const double* value, const char* format) {
    if (value == nullptr) {
      return std::string("-");
    }
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, format, *value);
    return std::string(buffer);
  };
  const auto format_count = [](const std::uint64_t* value) {
    return value == nullptr ? std::string("-") : std::to_string(*value);
  };

  const auto last = static_cast<std::size_t>(args.get_int_or("last", 0));
  const std::size_t first =
      (last > 0 && entries.size() > last) ? entries.size() - last : 0;
  util::TextTable table(
      {"day", "records", "unknown", "score_mean", "psi", "ks", "calib", "alerts"});
  std::size_t total_alerts = 0;
  for (std::size_t i = first; i < entries.size(); ++i) {
    const obs::JournalEntry& entry = entries[i];
    const obs::JournalHistogram* scores = entry.find_histogram("scores");
    const double mean = scores != nullptr ? scores->mean : 0.0;
    total_alerts += entry.alerts.size();
    table.add_row({std::to_string(entry.day), format_count(entry.find_counter("records")),
                   format_count(entry.find_counter("unknown_domains")),
                   scores != nullptr ? format_double(&mean, "%.4f") : "-",
                   format_double(entry.find_gauge("drift_score_psi"), "%.4f"),
                   format_double(entry.find_gauge("drift_score_ks"), "%.4f"),
                   format_double(entry.find_gauge("calibration_threshold"), "%.4f"),
                   std::to_string(entry.alerts.size())});
  }
  std::printf("%s", table.render().c_str());
  std::printf("journal %s: %zu day(s), %zu alert(s)\n", path.c_str(), entries.size(),
              total_alerts);
  return 0;
}

int cmd_validate_obs(const util::Args& args) {
  util::require_data(args.has("trace") || args.has("run-report") || args.has("metrics") ||
                         args.has("journal"),
                     "validate-obs: pass at least one of "
                     "--trace/--run-report/--metrics/--journal");
  if (args.has("trace")) {
    const auto path = args.get("trace");
    std::string error;
    const auto doc = obs::json::parse(read_file(path), &error);
    if (!error.empty()) {
      std::fprintf(stderr, "validate-obs: %s does not parse: %s\n", path.c_str(), error.c_str());
      return 1;
    }
    if (const auto problem = obs::validate_chrome_trace(doc); !problem.empty()) {
      std::fprintf(stderr, "validate-obs: %s: %s\n", path.c_str(), problem.c_str());
      return 1;
    }
    std::printf("trace %s: ok\n", path.c_str());
  }
  if (args.has("run-report")) {
    const auto path = args.get("run-report");
    std::string error;
    const auto doc = obs::json::parse(read_file(path), &error);
    if (!error.empty()) {
      std::fprintf(stderr, "validate-obs: %s does not parse: %s\n", path.c_str(), error.c_str());
      return 1;
    }
    if (const auto problem = obs::validate_run_report(doc); !problem.empty()) {
      std::fprintf(stderr, "validate-obs: %s: %s\n", path.c_str(), problem.c_str());
      return 1;
    }
    std::printf("run report %s: ok\n", path.c_str());
  }
  if (args.has("metrics")) {
    const auto path = args.get("metrics");
    if (const auto problem = validate_prometheus_text(read_file(path)); !problem.empty()) {
      std::fprintf(stderr, "validate-obs: %s: %s\n", path.c_str(), problem.c_str());
      return 1;
    }
    std::printf("metrics %s: ok\n", path.c_str());
  }
  if (args.has("journal")) {
    const auto path = args.get("journal");
    if (const auto problem = obs::validate_obs_journal(read_file(path)); !problem.empty()) {
      std::fprintf(stderr, "validate-obs: %s: %s\n", path.c_str(), problem.c_str());
      return 1;
    }
    std::printf("journal %s: ok\n", path.c_str());
  }
  return 0;
}

// Writes the obs exporter files requested on the command line, after the
// subcommand has run.
void write_obs_outputs(const std::string& command, const util::Args& args) {
  if (args.has("trace-out")) {
    const auto path = args.get("trace-out");
    std::ofstream out(path);
    util::require_data(out.is_open(), "cannot create '" + path + "'");
    obs::write_chrome_trace(out);
  }
  if (args.has("run-report")) {
    const auto path = args.get("run-report");
    std::ofstream out(path);
    util::require_data(out.is_open(), "cannot create '" + path + "'");
    obs::write_run_report(out, command);
  }
  if (args.has("metrics-out")) {
    const auto path = args.get("metrics-out");
    std::ofstream out(path);
    util::require_data(out.is_open(), "cannot create '" + path + "'");
    obs::Registry::instance().write_prometheus(out);
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: segugio <simgen|train|classify|report|inspect|status|validate-obs> "
               "[options]\n"
               "observability: --trace-out FILE --metrics-out FILE --run-report FILE\n"
               "               --journal FILE --health-interval MS\n"
               "see the header of tools/segugio_cli.cpp for the full option list\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const std::string command = argv[1];
  try {
    const util::Args args(argc - 2, argv + 2, {"machines", "no-prober-filter", "binary"});
    if (command == "validate-obs") {
      return cmd_validate_obs(args);
    }
    if (command == "status") {
      return cmd_status(args);
    }
    // Spans are recorded only when a trace-consuming output was requested;
    // metrics are always counted (exporting them costs nothing extra).
    obs::Tracer::instance().set_enabled(args.has("trace-out") || args.has("run-report"));
    int rc = 2;
    if (command == "simgen") {
      rc = cmd_simgen(args);
    } else if (command == "train") {
      rc = cmd_train(args);
    } else if (command == "classify") {
      rc = cmd_classify(args);
    } else if (command == "inspect") {
      rc = cmd_inspect(args);
    } else if (command == "report") {
      rc = cmd_report(args);
    } else {
      return usage();
    }
    if (rc == 0) {
      write_obs_outputs(command, args);
    }
    return rc;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "segugio %s: %s\n", command.c_str(), error.what());
    return 1;
  }
}
